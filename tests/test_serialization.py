"""Wire-format round trips: ``to_dict`` -> ``from_dict`` identity.

Every object the service sends across a process boundary must survive
``json.dumps``/``json.loads`` unchanged -- not merely ``to_dict`` and
back, because JSON is the actual wire.  Each round trip here goes
through a JSON string.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.composite import CompositeItem
from repro.core.customize import Interaction, InteractionKind
from repro.core.objective import ObjectiveWeights
from repro.core.package import TravelPackage
from repro.core.query import GroupQuery
from repro.data.poi import CATEGORIES, POI, Category
from repro.profiles.group import GroupProfile
from repro.profiles.schema import ProfileSchema
from repro.profiles.user import UserProfile


def make_poi(poi_id: int = 0, cat: Category | str = Category.RESTAURANT,
             lat: float = 48.85, lon: float = 2.35) -> POI:
    return POI(id=poi_id, name=f"poi-{poi_id}", cat=Category.parse(cat),
               lat=lat, lon=lon, type="french", tags=("french", "wine"),
               cost=1.0)


def roundtrip(obj):
    """``from_dict(json.loads(json.dumps(to_dict())))`` for ``obj``."""
    return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))


def assert_profiles_equal(a, b):
    assert a.schema == b.schema
    for cat in CATEGORIES:
        assert np.array_equal(a.vector(cat), b.vector(cat))


class TestQueryRoundTrip:
    def test_finite_budget(self):
        query = GroupQuery.of(acco=1, trans=2, rest=1, attr=3, budget=42.5)
        back = roundtrip(query)
        assert back == query
        assert back.budget == 42.5

    def test_infinite_budget_encodes_as_null(self):
        query = GroupQuery.of(attr=2)
        payload = query.to_dict()
        assert payload["budget"] is None
        back = roundtrip(query)
        assert back == query
        assert math.isinf(back.budget)


class TestCompositeItemRoundTrip:
    def test_pois_and_centroid_survive(self):
        ci = CompositeItem(
            [make_poi(1, "acco"), make_poi(2, "rest", lat=48.9, lon=2.3)],
            centroid=(48.87, 2.32),
        )
        back = roundtrip(ci)
        assert back.poi_ids == ci.poi_ids
        assert back.centroid == ci.centroid
        assert [p.to_dict() for p in back.pois] == [p.to_dict() for p in ci.pois]

    def test_empty_ci_with_explicit_centroid(self):
        ci = CompositeItem([], centroid=(48.85, 2.35))
        back = roundtrip(ci)
        assert len(back) == 0
        assert back.centroid == ci.centroid


class TestPackageRoundTrip:
    @given(seed=st.integers(0, 3))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_built_package_identity(self, app, uniform_group,
                                    default_query, seed):
        package = app.kfc.build(uniform_group.profile(), default_query,
                                seed=seed)
        back = roundtrip(package)
        assert back.k == package.k
        assert back.query == package.query
        for original, restored in zip(package, back):
            assert restored.poi_ids == original.poi_ids
            assert restored.centroid == original.centroid
        assert back.is_valid()

    def test_package_without_query(self):
        package = TravelPackage([CompositeItem([make_poi(5)])])
        back = roundtrip(package)
        assert back.query is None
        assert back[0].poi_ids == {5}


class TestProfileRoundTrips:
    def test_schema_identity(self, schema):
        assert roundtrip(schema) == schema

    def test_user_profile_identity(self, generator):
        profile = generator.random_user()
        assert_profiles_equal(roundtrip(profile), profile)

    def test_sparse_user_profile_identity(self, generator):
        profile = generator.sparse_user(dims_per_category=2)
        assert_profiles_equal(roundtrip(profile), profile)

    def test_group_profile_identity(self, uniform_group):
        profile = uniform_group.profile()
        assert_profiles_equal(roundtrip(profile), profile)

    def test_group_profile_scores_above_one_survive(self, schema):
        # Group profiles may leave the simplex (e.g. 1 - d_j consensus);
        # serialization must not clip.
        vectors = {cat: np.full(schema.size(cat), 1.4) for cat in CATEGORIES}
        profile = GroupProfile(schema, vectors)
        assert_profiles_equal(roundtrip(profile), profile)

    def test_from_dict_with_schema_override(self, schema, uniform_group):
        profile = uniform_group.profile()
        back = GroupProfile.from_dict(profile.to_dict(), schema=schema)
        assert back.schema is schema

    def test_user_profile_rejects_mismatched_schema(self, generator):
        profile = generator.random_user()
        wrong = ProfileSchema.with_topic_counts(3, 3)
        with pytest.raises(ValueError):
            UserProfile.from_dict(profile.to_dict(), schema=wrong)


class TestInteractionRoundTrip:
    @pytest.mark.parametrize("kind", list(InteractionKind))
    def test_identity_per_kind(self, kind):
        interaction = Interaction(
            kind=kind,
            added=(make_poi(10, "attr"),),
            removed=(make_poi(11, "rest"), make_poi(12, "rest", lat=48.8)),
            ci_index=3,
            actor=2,
        )
        back = roundtrip(interaction)
        assert back == interaction

    def test_defaults_and_missing_actor(self):
        interaction = Interaction(kind=InteractionKind.REMOVE,
                                  removed=(make_poi(1),))
        back = roundtrip(interaction)
        assert back == interaction
        assert back.actor is None


class TestWeightsRoundTrip:
    def test_identity(self):
        weights = ObjectiveWeights(alpha=0.5, beta=2.0, gamma=3.5,
                                   fuzzifier=1.8)
        assert roundtrip(weights) == weights

    def test_missing_fields_fall_back_to_defaults(self):
        assert ObjectiveWeights.from_dict({"gamma": 9.0}) == ObjectiveWeights(
            gamma=9.0
        )
