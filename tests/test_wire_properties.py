"""Property-based wire-format guarantees.

For every schema type crossing the service boundary,
``from_dict(json.loads(json.dumps(to_dict(x)))) == x`` must hold under
*generated* inputs, not just the handful of examples in
``test_serialization.py`` -- the sharded serving tier ships these dicts
between processes and over TCP, so any lossy corner silently corrupts
traffic.  Reject-tests pin down that malformed payloads raise
(``ValueError``/``KeyError``/``TypeError``), never half-construct.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.customize import Interaction, InteractionKind
from repro.core.objective import ObjectiveWeights
from repro.core.package import TravelPackage
from repro.core.composite import CompositeItem
from repro.core.query import GroupQuery
from repro.data.poi import CATEGORIES, POI, Category
from repro.profiles.consensus import ConsensusMethod
from repro.profiles.group import GroupProfile
from repro.profiles.schema import ProfileSchema
from repro.profiles.user import UserProfile
from repro.service.schema import (
    BuildRequest,
    CustomizeOp,
    CustomizeRequest,
    ErrorCode,
    GroupSpec,
    PackageResponse,
)

#: Shared example budget: these are pure-python round trips (no LDA, no
#: clustering), so a moderate budget keeps the suite quick while still
#: exploring the space.
WIRE_SETTINGS = settings(max_examples=25, deadline=None)

finite = st.floats(allow_nan=False, allow_infinity=False)
names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12
)


def roundtrip(obj):
    """Through the *actual* wire: a JSON string, not just dicts."""
    return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))


# -- strategies ---------------------------------------------------------------

categories = st.sampled_from(list(Category))


@st.composite
def pois(draw, poi_id=None):
    return POI(
        id=draw(st.integers(0, 10**6)) if poi_id is None else poi_id,
        name=draw(names),
        cat=draw(categories),
        lat=draw(st.floats(-90.0, 90.0)),
        lon=draw(st.floats(-180.0, 180.0)),
        type=draw(names),
        tags=tuple(draw(st.lists(names, max_size=3))),
        cost=draw(st.floats(0.0, 1e6)),
    )


@st.composite
def queries(draw):
    counts = draw(st.dictionaries(categories, st.integers(0, 5), min_size=1))
    if sum(counts.values()) == 0:
        counts[draw(categories)] = draw(st.integers(1, 5))
    budget = draw(st.one_of(st.just(math.inf), st.floats(0.0, 1e6)))
    return GroupQuery(counts=counts, budget=budget)


weights_strategy = st.builds(
    ObjectiveWeights,
    alpha=st.floats(0.0, 100.0),
    beta=st.floats(0.0, 100.0),
    gamma=st.floats(0.0, 100.0),
    fuzzifier=st.floats(1.1, 5.0),
)

group_specs = st.builds(
    GroupSpec,
    size=st.integers(1, 50),
    uniform=st.booleans(),
    seed=st.integers(0, 2**31),
    method=st.sampled_from([m.value for m in ConsensusMethod]),
    w1=st.one_of(st.none(), st.floats(0.0, 1.0)),
)

schemas = st.builds(ProfileSchema.with_topic_counts,
                    st.integers(1, 6), st.integers(1, 6))


@st.composite
def group_profiles(draw):
    schema = draw(schemas)
    vectors = {
        cat: np.asarray(draw(st.lists(st.floats(0.0, 2.0),
                                      min_size=schema.size(cat),
                                      max_size=schema.size(cat))))
        for cat in CATEGORIES
    }
    return GroupProfile(schema, vectors)


@st.composite
def user_profiles(draw):
    schema = draw(schemas)
    vectors = {
        cat: np.asarray(draw(st.lists(st.floats(0.0, 1.0),
                                      min_size=schema.size(cat),
                                      max_size=schema.size(cat))))
        for cat in CATEGORIES
    }
    return UserProfile(schema, vectors)


@st.composite
def packages(draw):
    cis = [
        CompositeItem(draw(st.lists(pois(), max_size=3,
                                    unique_by=lambda p: p.id)),
                      centroid=(draw(st.floats(-90, 90)),
                                draw(st.floats(-180, 180))))
        for _ in range(draw(st.integers(1, 3)))
    ]
    return TravelPackage(cis, query=draw(st.one_of(st.none(), queries())))


@st.composite
def interactions(draw):
    return Interaction(
        kind=draw(st.sampled_from(list(InteractionKind))),
        added=tuple(draw(st.lists(pois(), max_size=2))),
        removed=tuple(draw(st.lists(pois(), max_size=2))),
        ci_index=draw(st.integers(0, 20)),
        actor=draw(st.one_of(st.none(), st.integers(0, 100))),
    )


@st.composite
def build_requests(draw):
    explicit = draw(st.booleans())
    return BuildRequest(
        city=draw(names.filter(bool)),
        query=draw(queries()),
        profile=draw(group_profiles()) if explicit else None,
        group_spec=None if explicit else draw(group_specs),
        weights=draw(st.one_of(st.none(), weights_strategy)),
        k=draw(st.one_of(st.none(), st.integers(1, 10))),
        seed=draw(st.one_of(st.none(), st.integers(0, 2**31))),
        request_id=draw(st.one_of(st.none(), names)),
    )


@st.composite
def customize_requests(draw):
    op = draw(st.sampled_from(list(CustomizeOp)))
    needs_poi = op in (CustomizeOp.REMOVE, CustomizeOp.REPLACE)
    return CustomizeRequest(
        session_id=draw(names.filter(bool)),
        op=op,
        ci_index=draw(st.integers(0, 10)),
        poi_id=draw(st.integers(0, 10**6)) if needs_poi else None,
        add_poi_id=(draw(st.integers(0, 10**6))
                    if op is CustomizeOp.ADD else None),
        replacement_id=(draw(st.one_of(st.none(), st.integers(0, 10**6)))
                        if op is CustomizeOp.REPLACE else None),
        rect=((draw(st.floats(-90, 90)), draw(st.floats(-180, 180)),
               draw(st.floats(0, 10)), draw(st.floats(0, 10)))
              if op is CustomizeOp.GENERATE else None),
        actor=draw(st.one_of(st.none(), st.integers(0, 100))),
        request_id=draw(st.one_of(st.none(), names)),
    )


@st.composite
def package_responses(draw):
    failed = draw(st.booleans())
    return PackageResponse(
        city=draw(names),
        package=None if failed else draw(packages()),
        cached=draw(st.booleans()),
        latency_ms=draw(st.floats(0.0, 1e5)),
        metrics=draw(st.dictionaries(names, st.one_of(finite, st.none(),
                                                      st.booleans()),
                                     max_size=4)),
        session_id=draw(st.one_of(st.none(), names.filter(bool))),
        request_id=draw(st.one_of(st.none(), names)),
        error=draw(names.filter(bool)) if failed else None,
        code=(draw(st.sampled_from([c.value for c in ErrorCode]))
              if failed else None),
        shard=draw(st.one_of(st.none(), st.integers(0, 64))),
    )


def assert_profiles_equal(a, b):
    assert a.schema == b.schema
    for cat in CATEGORIES:
        assert np.array_equal(a.vector(cat), b.vector(cat))


# -- round trips --------------------------------------------------------------

class TestRoundTrips:
    @WIRE_SETTINGS
    @given(poi=pois())
    def test_poi(self, poi):
        assert roundtrip(poi) == poi

    @WIRE_SETTINGS
    @given(query=queries())
    def test_query(self, query):
        assert roundtrip(query) == query

    @WIRE_SETTINGS
    @given(weights=weights_strategy)
    def test_weights(self, weights):
        assert roundtrip(weights) == weights

    @WIRE_SETTINGS
    @given(spec=group_specs)
    def test_group_spec(self, spec):
        assert roundtrip(spec) == spec

    @WIRE_SETTINGS
    @given(profile=group_profiles())
    def test_group_profile(self, profile):
        assert_profiles_equal(roundtrip(profile), profile)

    @WIRE_SETTINGS
    @given(profile=user_profiles())
    def test_user_profile(self, profile):
        assert_profiles_equal(roundtrip(profile), profile)

    @WIRE_SETTINGS
    @given(interaction=interactions())
    def test_interaction(self, interaction):
        assert roundtrip(interaction) == interaction

    @WIRE_SETTINGS
    @given(package=packages())
    def test_package(self, package):
        back = roundtrip(package)
        assert back.query == package.query
        assert [ci.to_dict() for ci in back] == [ci.to_dict()
                                                 for ci in package]

    @WIRE_SETTINGS
    @given(request=build_requests())
    def test_build_request(self, request):
        back = roundtrip(request)
        assert back.city == request.city
        assert back.query == request.query
        assert back.group_spec == request.group_spec
        assert back.weights == request.weights
        assert (back.k, back.seed, back.request_id) == (
            request.k, request.seed, request.request_id)
        if request.profile is None:
            assert back.profile is None
        else:
            assert_profiles_equal(back.profile, request.profile)

    @WIRE_SETTINGS
    @given(request=customize_requests())
    def test_customize_request(self, request):
        assert roundtrip(request) == request

    @WIRE_SETTINGS
    @given(response=package_responses())
    def test_package_response(self, response):
        back = roundtrip(response)
        assert back.to_dict() == response.to_dict()
        assert back.ok == response.ok


# -- reject-tests -------------------------------------------------------------

#: (type, payload) pairs that must raise, not half-construct.
MALFORMED = [
    (BuildRequest, {}),                                  # no city at all
    (BuildRequest, {"city": "paris"}),                   # neither group form
    (BuildRequest, {"city": "paris",                     # both group forms
                    "group_spec": {"size": 3},
                    "profile": GroupProfile(
                        ProfileSchema.with_topic_counts(2, 2),
                        {c: np.zeros(ProfileSchema.with_topic_counts(2, 2)
                                     .size(c)) for c in CATEGORIES}
                    ).to_dict()}),
    (BuildRequest, {"city": "", "group_spec": {"size": 3}}),
    (BuildRequest, {"city": "paris", "group_spec": {"size": 0}}),
    (BuildRequest, {"city": "paris", "group_spec": {"size": 3,
                                                    "method": "nope"}}),
    (BuildRequest, {"city": "paris", "group_spec": {"size": 3},
                    "query": {"counts": {"acco": -1}}}),
    (BuildRequest, {"city": "paris", "group_spec": {"size": 3},
                    "query": {"counts": {"castle": 2}}}),  # unknown category
    (BuildRequest, {"city": "paris", "group_spec": {"size": 3},
                    "query": {"counts": {}}}),             # zero-item query
    (CustomizeRequest, {"session_id": "s1"}),              # no op
    (CustomizeRequest, {"session_id": "s1", "op": "explode"}),
    (CustomizeRequest, {"session_id": "s1", "op": "remove"}),   # no poi_id
    (CustomizeRequest, {"session_id": "s1", "op": "add"}),      # no add id
    (CustomizeRequest, {"session_id": "s1", "op": "generate"}), # no rect
    (CustomizeRequest, {"session_id": "s1", "op": "generate",
                        "rect": [1.0, 2.0]}),              # short rect
    (PackageResponse, {}),                                 # no city
    (PackageResponse, {"city": "paris", "error": "boom",
                       "code": "not-a-code"}),
    (PackageResponse, {"city": "paris", "code": "failed"}),  # code, no error
    (GroupSpec, {"size": -2}),
    (Interaction, {"added": []}),                          # no kind
    (Interaction, {"kind": "detonate"}),
    (GroupQuery, {"counts": {"rest": "many"}}),
    (ObjectiveWeights, {"alpha": -1.0}),
]


@pytest.mark.parametrize("wire_type,payload", MALFORMED,
                         ids=lambda p: getattr(p, "__name__", None))
def test_malformed_payloads_raise(wire_type, payload):
    with pytest.raises((ValueError, KeyError, TypeError)):
        wire_type.from_dict(payload)
