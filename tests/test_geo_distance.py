"""Unit and property tests for the distance substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    equirectangular_km,
    equirectangular_matrix,
    haversine_km,
    haversine_matrix,
    max_pairwise_distance,
    normalized_distance_matrix,
)

# Paris-ish coordinate strategies: the regime the paper's approximation
# claim covers.
_city_lat = st.floats(48.7, 49.0)
_city_lon = st.floats(2.1, 2.6)


class TestHaversine:
    def test_zero_for_identical_points(self):
        assert float(haversine_km(48.85, 2.35, 48.85, 2.35)) == 0.0

    def test_known_distance_paris_to_barcelona(self):
        # Notre-Dame to Sagrada Familia is about 830 km.
        d = float(haversine_km(48.8530, 2.3499, 41.4036, 2.1744))
        assert 820 < d < 840

    def test_symmetry(self):
        a = float(haversine_km(48.85, 2.35, 48.90, 2.40))
        b = float(haversine_km(48.90, 2.40, 48.85, 2.35))
        assert a == pytest.approx(b)

    def test_broadcasts_over_arrays(self):
        lats = np.array([48.85, 48.86])
        out = haversine_km(lats, 2.35, 48.85, 2.35)
        assert out.shape == (2,)
        assert out[0] == 0.0
        assert out[1] > 0.0

    def test_one_degree_latitude_is_111km(self):
        d = float(haversine_km(48.0, 2.0, 49.0, 2.0))
        assert d == pytest.approx(111.2, abs=0.5)


class TestEquirectangular:
    def test_zero_for_identical_points(self):
        assert float(equirectangular_km(48.85, 2.35, 48.85, 2.35)) == 0.0

    @given(lat1=_city_lat, lon1=_city_lon, lat2=_city_lat, lon2=_city_lon)
    @settings(max_examples=200, deadline=None)
    def test_matches_haversine_within_city(self, lat1, lon1, lat2, lon2):
        truth = float(haversine_km(lat1, lon1, lat2, lon2))
        approx = float(equirectangular_km(lat1, lon1, lat2, lon2))
        if truth > 1e-6:
            assert abs(approx - truth) / truth < 0.001  # the 0.1% claim
        else:
            assert approx == pytest.approx(truth, abs=1e-6)

    @given(lat1=_city_lat, lon1=_city_lon, lat2=_city_lat, lon2=_city_lon)
    @settings(max_examples=100, deadline=None)
    def test_non_negative_and_symmetric(self, lat1, lon1, lat2, lon2):
        d1 = float(equirectangular_km(lat1, lon1, lat2, lon2))
        d2 = float(equirectangular_km(lat2, lon2, lat1, lon1))
        assert d1 >= 0.0
        assert d1 == pytest.approx(d2, rel=1e-9)


class TestMatrices:
    def test_haversine_matrix_diagonal_zero(self):
        coords = [(48.85, 2.35), (48.86, 2.36), (48.87, 2.33)]
        mat = haversine_matrix(coords)
        assert mat.shape == (3, 3)
        assert np.allclose(np.diag(mat), 0.0)
        assert np.allclose(mat, mat.T)

    def test_equirectangular_matrix_agrees_pairwise(self):
        coords = [(48.85, 2.35), (48.86, 2.36)]
        mat = equirectangular_matrix(coords)
        direct = float(equirectangular_km(48.85, 2.35, 48.86, 2.36))
        assert mat[0, 1] == pytest.approx(direct)

    def test_rejects_malformed_coords(self):
        with pytest.raises(ValueError, match="lat, lon"):
            haversine_matrix([[1.0, 2.0, 3.0]])

    def test_max_pairwise_distance_single_point(self):
        assert max_pairwise_distance([(48.85, 2.35)]) == 0.0

    def test_max_pairwise_distance_matches_matrix_max(self):
        coords = [(48.85, 2.35), (48.90, 2.40), (48.80, 2.30)]
        assert max_pairwise_distance(coords) == pytest.approx(
            equirectangular_matrix(coords).max()
        )

    def test_normalized_matrix_in_unit_interval(self):
        coords = [(48.85, 2.35), (48.90, 2.40), (48.80, 2.30)]
        norm = normalized_distance_matrix(coords)
        assert norm.min() >= 0.0
        assert norm.max() == pytest.approx(1.0)

    def test_normalized_matrix_coincident_points(self):
        norm = normalized_distance_matrix([(48.85, 2.35)] * 3)
        assert np.allclose(norm, 0.0)
