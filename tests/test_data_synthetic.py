"""Tests for the synthetic city generator and city templates."""

import numpy as np
import pytest

from repro.data.cities import CITY_TEMPLATES, city_names, get_template
from repro.data.poi import CATEGORIES, Category
from repro.data.synthetic import generate_city


class TestCityTemplates:
    def test_eight_tourpedia_cities(self):
        assert len(city_names()) == 8
        assert {"paris", "barcelona", "amsterdam", "berlin",
                "dubai", "london", "rome", "tuscany"} == set(city_names())

    def test_get_template_case_insensitive(self):
        assert get_template("Paris").name == "paris"

    def test_get_template_unknown(self):
        with pytest.raises(KeyError, match="unknown city"):
            get_template("atlantis")

    def test_templates_have_sane_boxes(self):
        for template in CITY_TEMPLATES.values():
            assert template.south < template.north
            assert template.west < template.east
            assert template.neighbourhoods
            lat, lon = template.center
            assert template.south <= lat <= template.north

    def test_neighbourhood_seeds_inside_box(self):
        for template in CITY_TEMPLATES.values():
            for _, lat, lon, spread in template.neighbourhoods:
                assert template.south - 0.02 <= lat <= template.north + 0.02
                assert template.west - 0.02 <= lon <= template.east + 0.02
                assert spread > 0


class TestGenerateCity:
    def test_deterministic(self):
        a = generate_city("paris", seed=3, scale=0.2)
        b = generate_city("paris", seed=3, scale=0.2)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = generate_city("paris", seed=3, scale=0.2)
        b = generate_city("paris", seed=4, scale=0.2)
        assert a.to_json() != b.to_json()

    def test_counts_follow_template_and_scale(self):
        template = get_template("paris")
        city = generate_city("paris", seed=1, scale=0.5)
        counts = city.category_counts()
        for cat in CATEGORIES:
            assert counts[cat] == max(int(round(template.counts[cat] * 0.5)), 1)

    def test_all_pois_inside_bounding_box(self):
        template = get_template("barcelona")
        city = generate_city("barcelona", seed=5, scale=0.3)
        for poi in city:
            assert template.south <= poi.lat <= template.north
            assert template.west <= poi.lon <= template.east

    def test_pois_fully_augmented(self):
        city = generate_city("rome", seed=2, scale=0.2)
        for poi in city:
            assert poi.type
            assert poi.tags
            assert poi.cost >= 0

    def test_pois_are_spatially_clustered(self):
        """Neighbourhood structure: mean nearest-neighbour distance is
        far below what a uniform scatter would give."""
        city = generate_city("paris", seed=6, scale=1.0)
        coords = city.coordinates()
        # Nearest-neighbour distances via the dataset's grid.
        dists = []
        for poi in list(city)[:150]:
            nearest = city.nearest(poi.lat, poi.lon, k=2)
            other = [p for p in nearest if p.id != poi.id][0]
            dists.append(abs(other.lat - poi.lat) + abs(other.lon - poi.lon))
        spread = coords.std(axis=0).sum()
        assert np.mean(dists) < spread / 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="positive"):
            generate_city("paris", scale=0.0)

    def test_unique_ids_and_names(self):
        city = generate_city("london", seed=9, scale=0.3)
        names = [p.name for p in city]
        assert len(set(names)) == len(names)
