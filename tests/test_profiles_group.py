"""Tests for groups, group profiles, generators, and median users."""

import numpy as np
import pytest

from repro.data.poi import CATEGORIES
from repro.metrics.uniformity import group_uniformity
from repro.profiles.consensus import ConsensusMethod
from repro.profiles.generator import (
    GROUP_SIZES,
    NON_UNIFORM_THRESHOLD,
    UNIFORM_THRESHOLD,
    GroupGenerator,
    median_user_index,
)
from repro.profiles.group import Group, GroupProfile


class TestGroup:
    def test_requires_members(self):
        with pytest.raises(ValueError, match="at least one member"):
            Group([])

    def test_member_matrix_shape(self, uniform_group, schema):
        mat = uniform_group.member_matrix("rest")
        assert mat.shape == (5, schema.size("rest"))

    def test_profile_average_is_member_mean(self, uniform_group):
        profile = uniform_group.profile(ConsensusMethod.AVERAGE)
        for cat in CATEGORIES:
            expected = uniform_group.member_matrix(cat).mean(axis=0)
            assert np.allclose(profile.vector(cat), expected)

    def test_singleton_profile_is_member(self, uniform_group):
        single = uniform_group.singleton(2)
        profile = single.profile(ConsensusMethod.AVERAGE)
        member = uniform_group.members[2]
        for cat in CATEGORIES:
            assert np.allclose(profile.vector(cat), member.vector(cat))

    def test_with_member_replaces_one(self, uniform_group, generator):
        replacement = generator.random_user()
        new_group = uniform_group.with_member(0, replacement)
        assert new_group.members[0] is replacement
        assert new_group.members[1] is uniform_group.members[1]
        assert uniform_group.members[0] is not replacement

    def test_profile_updated_returns_new(self, uniform_group, schema):
        profile = uniform_group.profile()
        new = profile.updated("rest", np.zeros(schema.size("rest")))
        assert np.allclose(new.vector("rest"), 0.0)
        assert profile.vector("rest").sum() > 0

    def test_group_profile_shape_validation(self, schema):
        with pytest.raises(ValueError, match="missing category"):
            GroupProfile(schema, {})


class TestGenerator:
    def test_paper_group_sizes(self):
        assert GROUP_SIZES == {"small": 5, "medium": 10, "large": 100}

    def test_uniform_group_meets_threshold(self, generator):
        for size in (5, 10):
            group = generator.uniform_group(size)
            assert len(group) == size
            assert group_uniformity(group) > UNIFORM_THRESHOLD

    def test_non_uniform_group_meets_threshold(self, generator):
        for size in (5, 10):
            group = generator.non_uniform_group(size)
            assert len(group) == size
            assert group_uniformity(group) < NON_UNIFORM_THRESHOLD

    def test_large_non_uniform_group(self, schema):
        group = GroupGenerator(schema, seed=33).non_uniform_group(60)
        assert group_uniformity(group) < NON_UNIFORM_THRESHOLD

    def test_group_dispatch(self, generator):
        assert group_uniformity(generator.group(5, uniform=True)) > 0.85
        assert group_uniformity(generator.group(5, uniform=False)) < 0.20

    def test_deterministic(self, schema):
        a = GroupGenerator(schema, seed=9).uniform_group(5)
        b = GroupGenerator(schema, seed=9).uniform_group(5)
        assert np.allclose(a.members[0].concatenated(),
                           b.members[0].concatenated())

    def test_sparse_user_structure(self, generator, schema):
        user = generator.sparse_user(dims_per_category=2)
        for cat in CATEGORIES:
            vec = user.vector(cat)
            assert np.count_nonzero(vec) <= 2
            assert vec.sum() == pytest.approx(1.0)

    def test_elicitation_keeps_zero_dims_zero(self, generator):
        true_ratings = generator.sparse_ratings(dims_per_category=1)
        stated = generator.elicitation_ratings(true_ratings, noise=1.0)
        for cat in CATEGORIES:
            zero_mask = np.asarray(true_ratings[cat]) == 0.0
            assert np.allclose(np.asarray(stated[cat])[zero_mask], 0.0)


class TestMedianUser:
    def test_singleton(self, uniform_group):
        assert median_user_index(uniform_group.singleton(0)) == 0

    def test_median_is_most_central(self, non_uniform_group):
        from repro.metrics.similarity import cosine

        idx = median_user_index(non_uniform_group)
        vectors = [m.concatenated() for m in non_uniform_group.members]

        def centrality(i):
            return sum(cosine(vectors[i], vectors[j])
                       for j in range(len(vectors)) if j != i)

        best = max(range(len(vectors)), key=centrality)
        assert centrality(idx) == pytest.approx(centrality(best))
