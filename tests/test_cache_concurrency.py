"""Concurrency stress for :class:`~repro.service.cache.PackageCache`.

The cache sits on the hot path of every shard worker's batch pool, so
its lock discipline must hold under real thread contention: no lost
updates, the LRU bound respected at every moment, and counters that
add up exactly.  These tests hammer it from >= 8 threads through a
barrier start so the threads genuinely overlap.
"""

import random
import threading

from repro.service import PackageCache

THREADS = 8
OPS_PER_THREAD = 400


def _hammer(n_threads, worker):
    """Run ``worker(thread_index, rng)`` on ``n_threads`` threads with a
    barrier'd start; re-raises the first worker exception."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def run(index):
        rng = random.Random(1000 + index)
        try:
            barrier.wait()
            worker(index, rng)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestCacheStress:
    def test_no_lost_updates_without_eviction_pressure(self):
        """Capacity >= total distinct keys: after the storm every key
        must be present with exactly its own value (values are tied to
        their key, so a torn read/write would surface as a mismatch)."""
        cache = PackageCache(capacity=THREADS * OPS_PER_THREAD)
        gets = []
        gets_lock = threading.Lock()

        def worker(index, rng):
            observed = 0
            for i in range(OPS_PER_THREAD):
                key = ("k", index, i)
                cache.put(key, ("v", index, i))
                # Interleave reads of *other* threads' keyspace too.
                probe = ("k", rng.randrange(THREADS),
                         rng.randrange(OPS_PER_THREAD))
                value = cache.get(probe)
                if value is not None:
                    assert value == ("v", probe[1], probe[2])
                observed += 1
            with gets_lock:
                gets.append(observed)

        _hammer(THREADS, worker)

        assert sum(gets) == THREADS * OPS_PER_THREAD
        # No lost updates: every put key is present with its own value.
        for index in range(THREADS):
            for i in range(OPS_PER_THREAD):
                assert cache.get(("k", index, i)) == ("v", index, i)
        stats = cache.stats()
        assert stats["size"] == THREADS * OPS_PER_THREAD
        assert stats["evictions"] == 0
        # Counter exactness: the storm's gets plus the verification
        # sweep above, nothing dropped under contention.
        total_lookups = THREADS * OPS_PER_THREAD * 2
        assert stats["hits"] + stats["misses"] == total_lookups

    def test_lru_bound_holds_under_contention(self):
        """Tiny capacity, many threads: the size bound must hold at
        every observation point, not just at the end, and the hit/miss
        ledger must balance the number of lookups exactly."""
        capacity = 8
        cache = PackageCache(capacity=capacity)
        keyspace = capacity * 4  # guarantees constant eviction churn
        lookups = [0] * THREADS

        def worker(index, rng):
            count = 0
            for _ in range(OPS_PER_THREAD):
                key = ("k", rng.randrange(keyspace))
                if rng.random() < 0.5:
                    cache.put(key, ("v", key[1]))
                else:
                    value = cache.get(key)
                    count += 1
                    if value is not None:
                        assert value == ("v", key[1])
                # The bound must hold mid-storm, under every
                # interleaving -- not only after the dust settles.
                assert len(cache) <= capacity
            lookups[index] = count

        _hammer(THREADS, worker)

        stats = cache.stats()
        assert stats["size"] <= capacity
        assert stats["hits"] + stats["misses"] == sum(lookups)
        assert stats["evictions"] > 0  # the storm really churned
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_put_get_same_key_race(self):
        """All threads fight over ONE key: reads must only ever see
        complete values some thread actually wrote."""
        cache = PackageCache(capacity=2)
        key = ("contended",)
        valid = {("v", t) for t in range(THREADS)}

        def worker(index, rng):
            mine = ("v", index)
            for _ in range(OPS_PER_THREAD):
                cache.put(key, mine)
                value = cache.get(key)
                assert value in valid  # never torn, never foreign

        _hammer(THREADS, worker)
        assert cache.get(key) in valid
