"""Tests for the customization operators and profile refinement."""

import numpy as np
import pytest

from repro.core.customize import InteractionKind
from repro.core.refine import refine_batch, refine_individual
from repro.data.poi import CATEGORIES, Category
from repro.geo.rectangle import Rectangle
from repro.profiles.consensus import ConsensusMethod


@pytest.fixture()
def session(app, uniform_group, default_query):
    profile = uniform_group.profile()
    package = app.kfc.build(profile, default_query)
    return app.customize(package, profile)


class TestRemove:
    def test_remove_drops_poi_and_logs(self, session):
        victim = session.package[0].pois[0]
        removed = session.remove(0, victim.id, actor=2)
        assert removed.id == victim.id
        assert victim.id not in session.package[0]
        assert session.interactions[-1].kind is InteractionKind.REMOVE
        assert session.interactions[-1].actor == 2
        assert session.removed_pois() == [victim]

    def test_remove_missing_poi_raises(self, session):
        with pytest.raises(StopIteration):
            session.remove(0, 10**9)


class TestAdd:
    def test_suggestions_exclude_current_members(self, session):
        current = set(session.package[0].poi_ids)
        suggestions = session.suggest_additions(0, k=5)
        assert suggestions
        assert all(p.id not in current for p in suggestions)

    def test_suggestions_respect_category_filter(self, session):
        suggestions = session.suggest_additions(0, k=5,
                                                category=Category.RESTAURANT)
        assert all(p.cat == Category.RESTAURANT for p in suggestions)

    def test_add_appends_and_logs(self, session):
        poi = session.suggest_additions(0, k=1)[0]
        before = len(session.package[0])
        session.add(0, poi, actor=1)
        assert len(session.package[0]) == before + 1
        assert session.added_pois(actor=1) == [poi]


class TestReplace:
    def test_recommendation_is_same_category_nearest(self, session, app):
        target = session.package[1].pois[2]
        suggestion = session.recommend_replacement(1, target.id)
        assert suggestion is not None
        assert suggestion.cat == target.cat
        assert suggestion.id not in session.package[1]

    def test_replace_uses_recommendation(self, session):
        target = session.package[1].pois[2]
        replacement = session.replace(1, target.id, actor=0)
        assert target.id not in session.package[1]
        assert replacement.id in session.package[1]
        last = session.interactions[-1]
        assert last.kind is InteractionKind.REPLACE
        assert last.added == (replacement,)
        assert last.removed == (target,)

    def test_replace_explicit(self, session, app):
        target = session.package[0].pois[0]
        explicit = next(
            p for p in app.dataset.by_category(target.cat)
            if p.id not in session.package[0]
        )
        out = session.replace(0, target.id, replacement=explicit)
        assert out is explicit


class TestGenerate:
    def test_generate_appends_valid_ci(self, session, app, default_query):
        center = app.dataset.coordinates().mean(axis=0)
        rect = Rectangle.around(float(center[0]), float(center[1]),
                                0.05, 0.05)
        before = session.package.k
        index = session.generate(rect, actor=3)
        assert session.package.k == before + 1
        new_ci = session.package[index]
        assert new_ci.is_valid(default_query)
        # Generated CI anchors at the rectangle centre.
        assert new_ci.centroid == pytest.approx(rect.center)
        assert session.interactions[-1].kind is InteractionKind.GENERATE
        assert len(session.added_pois(actor=3)) == len(new_ci)

    def test_delete_composite_item(self, session):
        before_k = session.package.k
        n_pois = len(session.package[0])
        session.delete_composite_item(0, actor=1)
        assert session.package.k == before_k - 1
        removes = [i for i in session.interactions
                   if i.kind is InteractionKind.REMOVE]
        assert len(removes) == n_pois

    def test_actors_listing(self, session):
        session.remove(0, session.package[0].pois[0].id, actor=4)
        session.remove(0, session.package[0].pois[0].id, actor=2)
        assert session.actors() == [2, 4]


class TestRefinement:
    def _run_interactions(self, session):
        added = session.suggest_additions(0, k=1,
                                          category=Category.RESTAURANT)[0]
        session.add(0, added, actor=0)
        victim = next(p for p in session.package[1].pois
                      if p.cat == Category.ATTRACTION)
        session.remove(1, victim.id, actor=1)
        return added, victim

    def test_batch_moves_profile_toward_added(self, session, app):
        added, removed = self._run_interactions(session)
        old = session.profile
        new = refine_batch(old, session.interactions, app.item_index)
        add_vec = app.item_index.vector(added)
        delta_rest = new.vector("rest") - old.vector("rest")
        assert np.allclose(delta_rest, add_vec)
        delta_attr = new.vector("attr") - old.vector("attr")
        assert (delta_attr <= 1e-12).all()  # only a removal happened there

    def test_batch_clips_at_zero(self, session, app):
        _, removed = self._run_interactions(session)
        new = refine_batch(session.profile, session.interactions,
                           app.item_index)
        assert (new.vector("attr") >= 0.0).all()

    def test_batch_untouched_categories_stable(self, session, app):
        self._run_interactions(session)
        new = refine_batch(session.profile, session.interactions,
                           app.item_index)
        assert np.allclose(new.vector("acco"), session.profile.vector("acco"))

    def test_individual_refines_only_actors(self, session, app,
                                            uniform_group):
        self._run_interactions(session)
        refined_group, profile = refine_individual(
            uniform_group, session.interactions, app.item_index,
            method=ConsensusMethod.AVERAGE,
        )
        # Actors 0 and 1 changed; the rest are identical objects.
        assert refined_group.members[0] is not uniform_group.members[0]
        assert refined_group.members[1] is not uniform_group.members[1]
        for i in range(2, len(uniform_group)):
            assert refined_group.members[i] is uniform_group.members[i]
        # Member vectors stay inside [0, 1].
        for member in refined_group.members:
            for cat in CATEGORIES:
                vec = member.vector(cat)
                assert (vec >= 0.0).all() and (vec <= 1.0).all()

    def test_individual_without_actors_is_identity(self, session, app,
                                                   uniform_group):
        refined_group, profile = refine_individual(
            uniform_group, [], app.item_index
        )
        assert refined_group.members == uniform_group.members

    def test_facade_wrappers(self, app, session, uniform_group):
        self._run_interactions(session)
        batch = app.refine_profile_batch(session.profile, session)
        group2, individual = app.refine_profile_individual(
            uniform_group, session
        )
        assert batch.concatenated().shape == individual.concatenated().shape
