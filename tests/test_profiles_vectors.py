"""Tests for item vectors and the cross-city transfer."""

import numpy as np
import pytest

from repro.data.poi import Category
from repro.data.synthetic import generate_city
from repro.data.taxonomy import types_for
from repro.profiles.vectors import ItemVectorIndex


class TestFit:
    def test_every_poi_has_a_vector(self, app, small_city):
        index = app.item_index
        assert len(index) == len(small_city)
        for poi in small_city:
            assert poi.id in index

    def test_acco_trans_vectors_one_hot(self, app, small_city):
        index = app.item_index
        for cat in (Category.ACCOMMODATION, Category.TRANSPORTATION):
            type_list = types_for(cat)
            for poi in small_city.by_category(cat):
                vec = index.vector(poi)
                assert vec.sum() == pytest.approx(1.0)
                assert np.count_nonzero(vec) == 1
                assert vec[type_list.index(poi.type)] == 1.0

    def test_topic_vectors_are_distributions(self, app, small_city):
        index = app.item_index
        for cat in (Category.RESTAURANT, Category.ATTRACTION):
            for poi in small_city.by_category(cat)[:20]:
                vec = index.vector(poi)
                assert vec.sum() == pytest.approx(1.0)
                assert (vec >= 0).all()

    def test_schema_labels_match_vector_sizes(self, app):
        index = app.item_index
        schema = index.schema
        assert schema.size("acco") == len(types_for(Category.ACCOMMODATION))
        assert schema.size("rest") == 8

    def test_vector_returns_copy(self, app, small_city):
        index = app.item_index
        poi = small_city.by_category("rest")[0]
        vec = index.vector(poi)
        vec[:] = 0.0
        assert index.vector(poi).sum() > 0

    def test_unknown_poi_raises(self, app):
        with pytest.raises(KeyError, match="no item vector"):
            app.item_index.vector(10**9)

    def test_matrix_requires_single_category(self, app, small_city):
        index = app.item_index
        mixed = [small_city.by_category("rest")[0],
                 small_city.by_category("attr")[0]]
        with pytest.raises(ValueError, match="single category"):
            index.matrix(mixed)

    def test_matrix_stacks_vectors(self, app, small_city):
        index = app.item_index
        pois = list(small_city.by_category("rest")[:4])
        mat = index.matrix(pois)
        assert mat.shape == (4, index.schema.size("rest"))

    def test_topic_model_accessors(self, app):
        index = app.item_index
        assert index.topic_model("rest").n_topics == 8
        with pytest.raises(KeyError):
            index.topic_model("acco")


class TestTransfer:
    @pytest.fixture(scope="class")
    def barcelona(self):
        return generate_city("barcelona", seed=3, scale=0.25)

    @pytest.fixture(scope="class")
    def transferred(self, barcelona, app):
        return ItemVectorIndex.transfer(barcelona, app.item_index, seed=0)

    def test_shares_source_schema(self, transferred, app):
        assert transferred.schema == app.schema

    def test_covers_target_city(self, transferred, barcelona):
        for poi in barcelona:
            vec = transferred.vector(poi)
            assert vec.sum() == pytest.approx(1.0)

    def test_one_hot_categories_transfer_exactly(self, transferred, barcelona):
        for poi in barcelona.by_category("trans")[:10]:
            vec = transferred.vector(poi)
            assert np.count_nonzero(vec) == 1

    def test_topic_transfer_is_meaningful(self, transferred, barcelona, app):
        """Same-type POIs in the two cities should look more alike than
        different-type ones (topics transferred, not garbage)."""
        from repro.metrics.similarity import cosine

        by_type: dict[str, list] = {}
        for poi in barcelona.by_category("rest"):
            by_type.setdefault(poi.type, []).append(poi)
        types = [t for t, ps in by_type.items() if len(ps) >= 2]
        if len(types) < 2:
            pytest.skip("tiny city lacks type variety")
        same = cosine(transferred.vector(by_type[types[0]][0]),
                      transferred.vector(by_type[types[0]][1]))
        cross = cosine(transferred.vector(by_type[types[0]][0]),
                       transferred.vector(by_type[types[1]][0]))
        assert same >= cross - 0.25
