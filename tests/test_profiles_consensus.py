"""Tests for the four consensus functions, including the paper's worked
example and hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.profiles.consensus import (
    ConsensusMethod,
    average_pairwise_disagreement,
    average_preference,
    consensus_scores,
    disagreement_variance,
    least_misery_preference,
)

#: The paper's Section 2.3 example: family of four rating museums
#: 0.8, 1.0, 0.6 and 0.2.
FAMILY = np.array([[0.8], [1.0], [0.6], [0.2]])

member_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 6)),
    elements=st.floats(0.0, 1.0),
)


class TestPaperExample:
    def test_average_preference(self):
        assert average_preference(FAMILY)[0] == pytest.approx(0.65)

    def test_least_misery(self):
        assert least_misery_preference(FAMILY)[0] == pytest.approx(0.2)

    def test_pairwise_disagreement(self):
        # Pairwise |diffs|: .2 .2 .6 .4 .8 .4 -> mean = 2.6/6 = 0.4333
        assert average_pairwise_disagreement(FAMILY)[0] == pytest.approx(0.4333, abs=1e-3)

    def test_disagreement_variance(self):
        assert disagreement_variance(FAMILY)[0] == pytest.approx(0.0875, abs=1e-4)

    def test_combined_consensus(self):
        # g = 0.5 * 0.65 + 0.5 * (1 - 0.4333) = 0.6083
        g = consensus_scores(FAMILY, ConsensusMethod.PAIRWISE_DISAGREEMENT)
        assert g[0] == pytest.approx(0.6083, abs=1e-3)


class TestEdgeCases:
    def test_singleton_group(self):
        member = np.array([[0.3, 0.7]])
        assert np.allclose(average_pairwise_disagreement(member), 0.0)
        assert np.allclose(disagreement_variance(member), 0.0)
        assert np.allclose(average_preference(member), member[0])
        assert np.allclose(least_misery_preference(member), member[0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="n_members"):
            average_preference(np.zeros(5))

    def test_rejects_bad_w1(self):
        with pytest.raises(ValueError, match="w1"):
            consensus_scores(FAMILY, ConsensusMethod.AVERAGE, w1=1.5)

    def test_pure_preference_methods_ignore_disagreement(self):
        g_avg = consensus_scores(FAMILY, ConsensusMethod.AVERAGE)
        assert g_avg[0] == pytest.approx(0.65)
        g_lm = consensus_scores(FAMILY, ConsensusMethod.LEAST_MISERY)
        assert g_lm[0] == pytest.approx(0.2)

    def test_w1_override(self):
        g = consensus_scores(FAMILY, ConsensusMethod.PAIRWISE_DISAGREEMENT,
                             w1=1.0)
        assert g[0] == pytest.approx(0.65)  # pure average

    def test_method_metadata(self):
        assert ConsensusMethod.AVERAGE.w1 == 1.0
        assert ConsensusMethod.PAIRWISE_DISAGREEMENT.w1 == 0.5
        assert not ConsensusMethod.LEAST_MISERY.uses_disagreement
        assert ConsensusMethod.DISAGREEMENT_VARIANCE.uses_disagreement
        assert ConsensusMethod.AVERAGE.tp_label == "AVTP"

    def test_accepts_string_method(self):
        g = consensus_scores(FAMILY, "least_misery")
        assert g[0] == pytest.approx(0.2)


class TestProperties:
    @given(members=member_matrices)
    @settings(max_examples=120, deadline=None)
    def test_all_methods_stay_in_unit_interval(self, members):
        for method in ConsensusMethod:
            g = consensus_scores(members, method)
            assert (g >= -1e-12).all()
            assert (g <= 1.0 + 1e-12).all()

    @given(members=member_matrices)
    @settings(max_examples=100, deadline=None)
    def test_least_misery_below_average(self, members):
        assert (least_misery_preference(members)
                <= average_preference(members) + 1e-12).all()

    @given(members=member_matrices)
    @settings(max_examples=100, deadline=None)
    def test_disagreements_non_negative(self, members):
        assert (average_pairwise_disagreement(members) >= 0).all()
        assert (disagreement_variance(members) >= 0).all()

    @given(members=member_matrices)
    @settings(max_examples=100, deadline=None)
    def test_unanimous_groups_have_zero_disagreement(self, members):
        clone = np.repeat(members[:1], 4, axis=0)
        assert np.allclose(average_pairwise_disagreement(clone), 0.0)
        assert np.allclose(disagreement_variance(clone), 0.0, atol=1e-12)

    @given(members=member_matrices)
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, members):
        rng = np.random.default_rng(0)
        shuffled = members[rng.permutation(len(members))]
        for method in ConsensusMethod:
            assert np.allclose(consensus_scores(members, method),
                               consensus_scores(shuffled, method))

    @given(members=member_matrices)
    @settings(max_examples=60, deadline=None)
    def test_variance_bounded_by_pairwise(self, members):
        """Population variance <= half the mean absolute pairwise gap is
        not generally true, but variance <= pairwise * range is; assert
        the weaker, always-true bound var <= 1/4 for [0,1] data."""
        assert (disagreement_variance(members) <= 0.25 + 1e-12).all()
