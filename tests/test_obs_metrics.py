"""Windowed telemetry: the metrics registry's ring rotation and
late-sample handling, the exact-merge guarantee for cross-shard
windowed snapshots, the resource sampler's rate limiting, the SLO
monitor's verdicts, and the event-log emission/validation round trip.

The merge tests mirror the histogram layer's: cluster-wide windowed
results must equal results over the union of observations, in any
merge order.  Everything records with explicit ``ts`` so the window
arithmetic is deterministic.
"""

import json
import random

import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    ResourceSampler,
    SLOConfig,
    SLOMonitor,
    WindowConfig,
    merge_metrics_snapshots,
    merge_verdicts,
    window_gauge_last,
    window_gauge_rate,
    window_histogram,
    window_rate,
    window_sum,
    worst_state,
)
from repro.obs.check import check_log_lines


class TestWindowConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            WindowConfig(interval_s=float("inf"))
        with pytest.raises(ValueError):
            WindowConfig(slots=1)

    def test_start_for_is_epoch_aligned(self):
        window = WindowConfig(interval_s=10.0, slots=6)
        assert window.start_for(0.0) == 0.0
        assert window.start_for(9.999) == 0.0
        assert window.start_for(10.0) == 10.0
        assert window.start_for(25.3) == 20.0
        assert window.span_s == 60.0

    def test_every_process_agrees_on_boundaries(self):
        # The merge prerequisite: alignment is a pure function of the
        # timestamp, not of when a registry was constructed.
        a = WindowConfig(interval_s=7.5, slots=4)
        b = WindowConfig(interval_s=7.5, slots=9)
        for ts in (0.0, 3.1, 7.5, 1e9 + 2.2):
            assert a.start_for(ts) == b.start_for(ts)

    def test_config_is_picklable(self):
        import pickle
        window = WindowConfig(interval_s=0.25, slots=8)
        assert pickle.loads(pickle.dumps(window)) == window


class TestRingRotation:
    def test_counter_accumulates_within_a_window(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        reg.counter_inc("requests", ts=100.0)
        reg.counter_inc("requests", n=2, ts=109.9)
        windows = reg.snapshot()["series"]["requests"]["windows"]
        assert windows == [{"value": 3, "start_s": 100.0}]

    def test_old_windows_fall_off_the_ring(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=3))
        for ts in (0.0, 10.0, 20.0, 30.0):
            reg.counter_inc("requests", ts=ts)
        starts = [w["start_s"] for w in
                  reg.snapshot()["series"]["requests"]["windows"]]
        assert starts == [10.0, 20.0, 30.0]  # the ts=0 window retired

    def test_idle_gap_retires_everything_stale(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=3))
        reg.counter_inc("requests", ts=0.0)
        reg.counter_inc("requests", ts=1000.0)  # long idle gap
        starts = [w["start_s"] for w in
                  reg.snapshot()["series"]["requests"]["windows"]]
        assert starts == [1000.0]

    def test_late_sample_lands_in_its_resident_window(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        reg.counter_inc("requests", ts=35.0)
        reg.counter_inc("requests", ts=22.0)  # late but still resident
        snapshot = reg.snapshot()
        windows = {w["start_s"]: w["value"]
                   for w in snapshot["series"]["requests"]["windows"]}
        assert windows == {20.0: 1, 30.0: 1}
        assert snapshot["dropped_late"] == 0

    def test_sample_older_than_the_ring_is_dropped_and_counted(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=2))
        reg.counter_inc("requests", ts=100.0)
        reg.observe("latency:build", 0.01, ts=100.0)
        reg.gauge_set("rss_bytes", 1.0, ts=100.0)
        reg.counter_inc("requests", ts=50.0)   # two+ slots behind
        reg.observe("latency:build", 0.01, ts=50.0)
        reg.gauge_set("rss_bytes", 1.0, ts=50.0)
        snapshot = reg.snapshot()
        assert snapshot["dropped_late"] == 3
        starts = [w["start_s"] for w in
                  snapshot["series"]["requests"]["windows"]]
        assert starts == [100.0]

    def test_gauge_window_keeps_last_min_max_sum_n(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        for value in (5.0, 1.0, 3.0):
            reg.gauge_set("inflight", value, ts=42.0)
        (window,) = reg.snapshot()["series"]["inflight"]["windows"]
        assert window == {"last": 3.0, "min": 1.0, "max": 5.0,
                          "sum": 9.0, "n": 3, "start_s": 40.0}


class TestMergeSnapshots:
    def _populated(self, seed: int) -> tuple[MetricsRegistry, list]:
        """One registry plus its raw observations (for union checks)."""
        window = WindowConfig(interval_s=10.0, slots=8)
        reg = MetricsRegistry(window)
        rng = random.Random(seed)
        observations = []
        for _ in range(120):
            ts = rng.uniform(0.0, 60.0)
            reg.counter_inc("requests", ts=ts)
            seconds = rng.uniform(1e-4, 0.3)
            reg.observe("latency:build", seconds, ts=ts)
            observations.append((ts, seconds))
        return reg, observations

    def test_merge_is_order_independent(self):
        snaps = [self._populated(seed)[0].snapshot() for seed in (1, 2, 3)]
        forward = merge_metrics_snapshots(snaps)
        backward = merge_metrics_snapshots(list(reversed(snaps)))
        assert forward == backward

    def test_merged_windows_equal_the_union(self):
        parts, all_obs = [], []
        for seed in (4, 5, 6):
            reg, observations = self._populated(seed)
            parts.append(reg.snapshot())
            all_obs.extend(observations)
        merged = merge_metrics_snapshots(parts)

        union = MetricsRegistry(WindowConfig(interval_s=10.0, slots=8))
        for ts, seconds in all_obs:
            union.counter_inc("requests", ts=ts)
            union.observe("latency:build", seconds, ts=ts)
        expected = union.snapshot()

        assert (merged["series"]["requests"]
                == expected["series"]["requests"])
        # Histogram windows: exact per-window percentiles.
        merged_hist = merged["series"]["latency:build"]["windows"]
        union_hist = expected["series"]["latency:build"]["windows"]
        assert len(merged_hist) == len(union_hist)
        for got, want in zip(merged_hist, union_hist):
            for key in ("start_s", "count", "p50_ms", "p99_ms", "max_ms"):
                assert got[key] == want[key], key

    def test_gauge_lasts_sum_to_the_cluster_total(self):
        # Three "processes" each report 100 MiB resident: the merged
        # window's ``last`` is the instantaneous cluster total.
        parts = []
        for _ in range(3):
            reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
            reg.gauge_set("rss_bytes", 100.0, ts=30.0)
            reg.gauge_set("rss_bytes", 90.0, ts=35.0)
            parts.append(reg.snapshot())
        merged = merge_metrics_snapshots(parts)
        (window,) = merged["series"]["rss_bytes"]["windows"]
        assert window["last"] == 270.0
        assert window["min"] == 90.0 and window["max"] == 100.0
        assert window["n"] == 6

    def test_mismatched_interval_is_skipped_not_garbled(self):
        a = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        b = MetricsRegistry(WindowConfig(interval_s=7.0, slots=4))
        a.counter_inc("requests", ts=20.0)
        b.counter_inc("requests", ts=21.0)
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert merged["interval_s"] == 10.0
        assert merged["skipped"] == 1
        assert window_sum(merged, "requests", 100.0, now=25.0) == 1

    def test_merge_tolerates_empty_and_none(self):
        merged = merge_metrics_snapshots([None, {}, None])
        assert merged["series"] == {}
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        reg.counter_inc("requests", ts=5.0)
        merged = merge_metrics_snapshots([None, reg.snapshot()])
        assert window_sum(merged, "requests", 100.0, now=9.0) == 1

    def test_json_round_trip_preserves_merge(self):
        reg, _ = self._populated(7)
        snap = json.loads(json.dumps(reg.snapshot()))
        merged = merge_metrics_snapshots([snap, snap])
        doubled = window_sum(merged, "requests", 120.0, now=60.0)
        assert doubled == 2 * window_sum(snap, "requests", 120.0, now=60.0)


class TestRollingReaders:
    def _snapshot(self) -> dict:
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=8))
        for ts, n in ((0.0, 5), (10.0, 3), (20.0, 2)):
            reg.counter_inc("requests", n=n, ts=ts)
        reg.observe("latency:build", 0.05, ts=21.0)
        reg.gauge_set("cpu_s", 1.0, ts=10.0)
        reg.gauge_set("cpu_s", 3.0, ts=20.0)
        return reg.snapshot()

    def test_window_sum_respects_the_horizon(self):
        snap = self._snapshot()
        assert window_sum(snap, "requests", 20.0, now=25.0) == 5  # 10,20
        assert window_sum(snap, "requests", 100.0, now=25.0) == 10
        assert window_sum(snap, "missing", 100.0, now=25.0) == 0

    def test_window_rate(self):
        snap = self._snapshot()
        assert window_rate(snap, "requests", 10.0, now=25.0) == \
            pytest.approx(0.2)  # only the ts=20 window counts
        assert window_rate(snap, "requests", 0.0, now=25.0) == 0.0

    def test_window_histogram_empty_and_populated(self):
        snap = self._snapshot()
        assert window_histogram(snap, "latency:build", 1.0,
                                now=500.0)["count"] == 0
        hist = window_histogram(snap, "latency:build", 30.0, now=25.0)
        assert hist["count"] == 1
        assert hist["p99_ms"] >= 50.0

    def test_gauge_last_and_rate(self):
        snap = self._snapshot()
        assert window_gauge_last(snap, "cpu_s") == 3.0
        assert window_gauge_last(snap, "absent", default=-1.0) == -1.0
        # (3.0 - 1.0) over the 10s between the two window starts.
        assert window_gauge_rate(snap, "cpu_s") == pytest.approx(0.2)
        assert window_gauge_rate(snap, "absent") == 0.0


class TestResourceSampler:
    def test_samples_every_series_as_gauges(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        sampler = ResourceSampler(reg)
        assert sampler.sample(now=100.0)
        series = reg.snapshot()["series"]
        for name in ResourceSampler.SERIES:
            assert name in series, name
            assert series[name]["type"] == "gauge"
        assert window_gauge_last(reg.snapshot(), "rss_bytes") > 0
        assert window_gauge_last(reg.snapshot(), "threads") >= 1

    def test_rate_limit_makes_poll_storms_cheap(self):
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4))
        sampler = ResourceSampler(reg, min_interval_s=1.0)
        assert sampler.sample(now=100.0)
        assert not sampler.sample(now=100.5)   # inside the floor
        assert not sampler.sample(now=100.99)
        assert sampler.sample(now=101.0)
        assert sampler.samples == 2


class TestEmissionRoundTrip:
    def test_closed_windows_emit_valid_metric_records(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog(str(path))
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=4),
                              log=log, meta={"shard": 2})
        for ts in (0.0, 5.0, 10.0, 20.0):
            reg.counter_inc("requests", ts=ts)
            reg.observe("latency:build", 0.01, ts=ts)
        log.close()

        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert all(r["kind"] == "metrics" for r in records)
        # Two closed windows (0 and 10) per series; 20 is still open.
        by_series = {}
        for record in records:
            by_series.setdefault(record["series"], []).append(record)
        assert [r["start_s"] for r in by_series["requests"]] == [0.0, 10.0]
        assert by_series["requests"][0]["value"] == 2
        assert all(r["shard"] == 2 for r in records)
        assert by_series["latency:build"][0]["count"] == 2

        summary, problems = check_log_lines(lines)
        assert problems == []
        assert summary["metric_windows"] == len(records)
        assert summary["metric_series"] == 2

    def test_checker_flags_overlap_backwards_and_misalignment(self):
        def metric(start, interval=10.0, pid=7, series="requests"):
            return json.dumps({"kind": "metrics", "series": series,
                               "start_s": start, "interval_s": interval,
                               "pid": pid, "value": 1})

        summary, problems = check_log_lines([
            metric(0.0), metric(3.0),      # overlaps the 0..10 window
            metric(10.0), metric(10.0),    # duplicate emit = backwards
            metric(25.0),                  # not aligned to interval
            metric(0.0, interval=-1.0),    # bad interval
            json.dumps({"kind": "metrics", "start_s": 0.0,
                        "interval_s": 10.0}),  # no series name
        ])
        text = "\n".join(problems)
        assert "overlaps the previous window" in text
        assert "went backwards" in text
        assert "not aligned to interval" in text
        assert "bad interval" in text
        assert "without a series name" in text
        assert summary["metric_windows"] == 7

    def test_checker_accepts_interleaved_processes(self):
        # Two pids emitting the same series interleave freely: the
        # monotonicity invariant is per (pid, series), not global.
        lines = []
        for start in (0.0, 10.0, 20.0):
            for pid in (1, 2):
                lines.append(json.dumps({
                    "kind": "metrics", "series": "requests",
                    "start_s": start, "interval_s": 10.0, "pid": pid,
                    "value": 1}))
        summary, problems = check_log_lines(lines)
        assert problems == []
        assert summary["metric_series"] == 2


class TestSLOMonitor:
    def _snapshot(self, requests=100, errors=0, sheds=0, latencies=(),
                  hits=0, misses=0, ts=100.0) -> dict:
        reg = MetricsRegistry(WindowConfig(interval_s=10.0, slots=8))
        if requests:
            reg.counter_inc("requests", n=requests, ts=ts)
        if errors:
            reg.counter_inc("errors", n=errors, ts=ts)
        if sheds:
            reg.counter_inc("shed", n=sheds, ts=ts)
        if hits:
            reg.counter_inc("cache_hits", n=hits, ts=ts)
        if misses:
            reg.counter_inc("cache_misses", n=misses, ts=ts)
        for seconds in latencies:
            reg.observe("latency:build", seconds, ts=ts)
        return reg.snapshot()

    def test_idle_service_is_ok_by_definition(self):
        monitor = SLOMonitor(SLOConfig(min_requests=5))
        verdict = monitor.evaluate(self._snapshot(requests=2, errors=2),
                                   now=105.0)
        assert verdict["state"] == "ok"
        assert verdict["idle"] is True
        assert verdict["reasons"] == []

    def test_error_rate_degraded_then_breached(self):
        monitor = SLOMonitor(SLOConfig(error_rate=0.05, breach_factor=2.0))
        degraded = monitor.evaluate(
            self._snapshot(requests=100, errors=8), now=105.0)
        assert degraded["state"] == "degraded"
        (reason,) = degraded["reasons"]
        assert reason["slo"] == "error_rate"
        assert reason["value"] == pytest.approx(0.08)

        breached = monitor.evaluate(
            self._snapshot(requests=100, errors=20), now=105.0)
        assert breached["state"] == "breached"

    def test_shed_rate_uses_offered_load_as_denominator(self):
        monitor = SLOMonitor(SLOConfig(shed_rate=0.10))
        verdict = monitor.evaluate(
            self._snapshot(requests=80, sheds=20), now=105.0)
        (reason,) = verdict["reasons"]
        assert reason["slo"] == "shed_rate"
        assert reason["value"] == pytest.approx(0.2)
        assert verdict["state"] == "degraded"

    def test_latency_p99_per_op_with_override(self):
        config = SLOConfig(p99_ms=1000.0,
                           p99_ms_by_op=(("build", 10.0),))
        monitor = SLOMonitor(config)
        verdict = monitor.evaluate(
            self._snapshot(latencies=[0.05] * 20), now=105.0)
        (reason,) = verdict["reasons"]
        assert reason["slo"] == "latency_p99" and reason["op"] == "build"
        assert reason["value"] >= 50.0
        assert verdict["state"] == "breached"  # 50ms > 2 * 10ms
        # An override of 0 disables the rule for that op entirely.
        off = SLOMonitor(SLOConfig(p99_ms=1000.0,
                                   p99_ms_by_op=(("build", 0.0),)))
        assert off.evaluate(self._snapshot(latencies=[0.05] * 20),
                            now=105.0)["state"] == "ok"

    def test_cache_hit_floor(self):
        monitor = SLOMonitor(SLOConfig(cache_hit_floor=0.5,
                                       breach_factor=2.0))
        verdict = monitor.evaluate(
            self._snapshot(hits=30, misses=70), now=105.0)
        (reason,) = verdict["reasons"]
        assert reason["slo"] == "cache_hit_rate"
        assert verdict["state"] == "degraded"   # 0.3 >= 0.5 / 2
        breached = monitor.evaluate(
            self._snapshot(hits=10, misses=90), now=105.0)
        assert breached["state"] == "breached"  # 0.1 < 0.25

    def test_recovery_as_windows_rotate_out_of_the_horizon(self):
        monitor = SLOMonitor(SLOConfig(error_rate=0.05, horizon_s=30.0))
        snapshot = self._snapshot(requests=100, errors=50, ts=100.0)
        assert monitor.evaluate(snapshot, now=105.0)["state"] == "breached"
        # The same snapshot, read after the horizon has moved on.
        assert monitor.evaluate(snapshot, now=200.0)["state"] == "ok"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(breach_factor=0.5)
        with pytest.raises(ValueError):
            SLOConfig(error_rate=-0.1)
        with pytest.raises(ValueError):
            SLOConfig(cache_hit_floor=1.5)

    def test_config_is_picklable(self):
        import pickle
        config = SLOConfig(p99_ms=250.0, p99_ms_by_op=(("build", 500.0),))
        assert pickle.loads(pickle.dumps(config)) == config

    def test_worst_state_and_merge_verdicts(self):
        assert worst_state() == "ok"
        assert worst_state("ok", "degraded") == "degraded"
        assert worst_state("breached", "degraded", "ok") == "breached"
        assert worst_state("garbage") == "ok"

        overall = {"state": "ok", "reasons": [], "requests": 10}
        shard = {"state": "degraded",
                 "reasons": [{"slo": "error_rate", "severity": "degraded",
                              "value": 0.2, "target": 0.05}]}
        merged = merge_verdicts(overall, ("shard:1", shard),
                                ("frontend", {}), ("shard:2", None))
        assert merged["state"] == "degraded"
        (reason,) = merged["reasons"]
        assert reason["source"] == "shard:1"
        assert merged["requests"] == 10
