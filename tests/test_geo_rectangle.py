"""Tests for map rectangles."""

import pytest

from repro.geo.rectangle import Rectangle


class TestRectangle:
    def test_corners(self):
        rect = Rectangle(lat=48.90, lon=2.30, width=0.10, height=0.05)
        assert rect.north == 48.90
        assert rect.south == pytest.approx(48.85)
        assert rect.west == 2.30
        assert rect.east == pytest.approx(2.40)

    def test_center(self):
        rect = Rectangle(lat=48.90, lon=2.30, width=0.10, height=0.05)
        lat, lon = rect.center
        assert lat == pytest.approx(48.875)
        assert lon == pytest.approx(2.35)

    def test_contains_interior_and_boundary(self):
        rect = Rectangle(lat=48.90, lon=2.30, width=0.10, height=0.05)
        assert rect.contains(48.875, 2.35)
        assert rect.contains(48.90, 2.30)  # corner inclusive
        assert not rect.contains(48.91, 2.35)
        assert not rect.contains(48.875, 2.41)

    def test_around_centers_on_point(self):
        rect = Rectangle.around(48.875, 2.35, width=0.10, height=0.05)
        assert rect.center == (pytest.approx(48.875), pytest.approx(2.35))
        assert rect.contains(48.875, 2.35)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Rectangle(lat=48.9, lon=2.3, width=-0.1, height=0.1)

    def test_degenerate_rectangle_contains_anchor_only(self):
        rect = Rectangle(lat=48.9, lon=2.3, width=0.0, height=0.0)
        assert rect.contains(48.9, 2.3)
        assert not rect.contains(48.9001, 2.3)
