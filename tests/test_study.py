"""Tests for the simulated crowd-study substrate."""

import numpy as np
import pytest

from repro.core.baselines import invalid_random_package, random_package
from repro.profiles.group import Group
from repro.study.group_formation import (
    GroupFormationError,
    form_group,
    form_study_groups,
)
from repro.study.protocols import comparative_evaluation, independent_evaluation
from repro.study.satisfaction import (
    package_affinity,
    prefers,
    rate_package,
    session_ratings,
)
from repro.study.workers import (
    EVALUATION_PAYMENT,
    PROFILE_PAYMENT,
    Platform,
    Worker,
    WorkerPool,
)

RECRUITS = {Platform.FIGURE_EIGHT: 120, Platform.MTURK: 60}


@pytest.fixture(scope="module")
def pool(schema):
    return WorkerPool.recruit(schema, seed=3, recruits=RECRUITS)


@pytest.fixture(scope="module")
def packages(app, pool, default_query):
    members = pool.sample(6, seed=1)
    group = Group([w.profile for w in members])
    profile = group.profile()
    return {
        "random": invalid_random_package(app.dataset, default_query, seed=0),
        "plain": random_package(app.dataset, default_query, seed=1),
        "kfc": app.kfc.build(profile, default_query),
    }


class TestWorkerPool:
    def test_retention_prunes_some_workers(self, pool):
        assert 0 < len(pool) < sum(RECRUITS.values())

    def test_retention_rates_per_platform(self, schema):
        big = WorkerPool.recruit(schema, seed=9,
                                 recruits={Platform.FIGURE_EIGHT: 1000,
                                           Platform.MTURK: 1000})
        fe = sum(1 for w in big.workers if w.platform is Platform.FIGURE_EIGHT)
        mt = sum(1 for w in big.workers if w.platform is Platform.MTURK)
        assert fe / 1000 == pytest.approx(0.901, abs=0.04)
        assert mt / 1000 == pytest.approx(0.966, abs=0.04)

    def test_profile_payment_on_recruit(self, pool):
        assert pool.total_paid() == pytest.approx(len(pool) * PROFILE_PAYMENT)

    def test_pay_accumulates(self, schema):
        pool = WorkerPool.recruit(schema, seed=1,
                                  recruits={Platform.MTURK: 10})
        worker = pool.workers[0]
        before = pool.payments[worker.id]
        pool.pay(worker.id, EVALUATION_PAYMENT)
        assert pool.payments[worker.id] == pytest.approx(
            before + EVALUATION_PAYMENT
        )
        with pytest.raises(ValueError):
            pool.pay(worker.id, -1.0)

    def test_approval_filter(self, pool):
        qualified = pool.with_min_approval(0.9)
        assert qualified
        assert all(w.approval_rate > 0.9 for w in qualified)

    def test_sample_deterministic_and_bounded(self, pool):
        a = pool.sample(5, seed=2)
        b = pool.sample(5, seed=2)
        assert [w.id for w in a] == [w.id for w in b]
        with pytest.raises(ValueError):
            pool.sample(len(pool) + 1)

    def test_workers_have_true_and_stated_profiles(self, pool):
        worker = pool.workers[0]
        assert worker.profile is not worker.true_profile
        # Stated is a noisy version of true: same support for sparse
        # members, broadly similar overall.
        from repro.metrics.similarity import cosine
        sims = [cosine(w.profile.concatenated(),
                       w.true_profile.concatenated())
                for w in pool.workers[:50]]
        assert np.mean(sims) > 0.7


class TestSatisfaction:
    def test_affinity_in_minus_one_one(self, pool, packages, app):
        for worker in pool.workers[:10]:
            for package in packages.values():
                a = package_affinity(worker.true_profile, package,
                                     app.item_index)
                assert -1.0 <= a <= 1.0

    def test_ratings_in_range(self, pool, packages, app):
        rng = np.random.default_rng(0)
        for worker in pool.workers[:20]:
            scores = session_ratings(worker, packages, app.item_index, rng)
            assert set(scores) == set(packages)
            assert all(1 <= s <= 5 for s in scores.values())
            single = rate_package(worker, packages["kfc"], app.item_index, rng)
            assert 1 <= single <= 5

    def test_diligent_worker_prefers_better_package(self, pool, packages, app):
        """A maximally diligent worker should prefer the package with
        the higher affinity most of the time."""
        worker = max(pool.workers, key=lambda w: w.diligence)
        rng = np.random.default_rng(1)
        first = packages["kfc"]
        second = packages["plain"]
        a = package_affinity(worker.true_profile, first, app.item_index)
        b = package_affinity(worker.true_profile, second, app.item_index)
        better, worse = (first, second) if a >= b else (second, first)
        wins = sum(prefers(worker, better, worse, app.item_index, rng)
                   for _ in range(40))
        assert wins > 20


class TestProtocols:
    def test_independent_filters_and_pays(self, pool, packages, app):
        members = pool.sample(12, seed=5)
        result = independent_evaluation(members, packages, app.item_index,
                                        seed=1, pool=pool)
        assert result["n_attentive"] + result["n_discarded"] == 12
        assert set(result["mean_ratings"]) == set(packages)

    def test_independent_without_check_keeps_everyone(self, pool, packages,
                                                      app):
        members = pool.sample(8, seed=6)
        result = independent_evaluation(members, packages, app.item_index,
                                        seed=1, check_label=None)
        assert result["n_discarded"] == 0
        assert result["n_attentive"] == 8

    def test_comparative_default_pairs(self, pool, packages, app):
        members = pool.sample(10, seed=7)
        result = comparative_evaluation(members, packages, app.item_index,
                                        seed=2)
        # Non-check labels: plain, kfc -> one pair.
        assert set(result["supremacy"]) == {("plain", "kfc")}
        value = result["supremacy"][("plain", "kfc")]
        assert 0.0 <= value <= 100.0

    def test_comparative_explicit_pairs(self, pool, packages, app):
        members = pool.sample(10, seed=8)
        pairs = [("kfc", "plain"), ("kfc", "random")]
        result = comparative_evaluation(members, packages, app.item_index,
                                        pairs=pairs, seed=3)
        assert set(result["supremacy"]) == set(pairs)


class TestGroupFormation:
    def test_form_uniform_group(self, pool):
        rng = np.random.default_rng(0)
        used: set[int] = set()
        group, workers = form_group(pool.workers, 5, True, rng, used)
        from repro.metrics.uniformity import group_uniformity
        assert group_uniformity(group) > 0.85
        assert len(used) == 5

    def test_form_non_uniform_group(self, pool):
        rng = np.random.default_rng(0)
        used: set[int] = set()
        group, workers = form_group(pool.workers, 5, False, rng, used)
        from repro.metrics.uniformity import group_uniformity
        assert group_uniformity(group) < 0.20

    def test_workers_not_reused(self, pool):
        rng = np.random.default_rng(0)
        used: set[int] = set()
        _, first = form_group(pool.workers, 5, True, rng, used)
        _, second = form_group(pool.workers, 5, True, rng, used)
        assert not {w.id for w in first} & {w.id for w in second}

    def test_pool_too_small_raises(self, pool):
        rng = np.random.default_rng(0)
        used = {w.id for w in pool.workers}
        with pytest.raises(GroupFormationError):
            form_group(pool.workers, 5, True, rng, used)

    def test_form_study_roster(self, pool):
        roster = form_study_groups(pool, sizes={"small": 5},
                                   groups_per_size_uniform=2,
                                   groups_per_size_non_uniform=1, seed=4)
        assert len(roster[(True, "small")]) == 2
        assert len(roster[(False, "small")]) == 1
