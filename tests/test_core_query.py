"""Tests for group queries and Composite Items."""

import math

import pytest

from repro.core.composite import CompositeItem
from repro.core.query import DEFAULT_QUERY, GroupQuery
from repro.data.poi import Category


class TestGroupQuery:
    def test_of_constructor(self):
        q = GroupQuery.of(acco=1, trans=1, rest=2, attr=1, budget=120)
        assert q.count("acco") == 1
        assert q.count("rest") == 2
        assert q.total_items() == 5
        assert q.budget == 120

    def test_default_query_matches_paper(self):
        assert DEFAULT_QUERY.count("acco") == 1
        assert DEFAULT_QUERY.count("trans") == 1
        assert DEFAULT_QUERY.count("rest") == 1
        assert DEFAULT_QUERY.count("attr") == 3
        assert not DEFAULT_QUERY.has_budget

    def test_unrequested_category_is_zero(self):
        q = GroupQuery.of(rest=2)
        assert q.count("acco") == 0
        assert q.requested_categories() == (Category.RESTAURANT,)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError, match="at least one POI"):
            GroupQuery(counts={})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GroupQuery.of(rest=-1, attr=1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            GroupQuery.of(rest=1, budget=-5)

    def test_string_form(self):
        q = GroupQuery.of(acco=1, trans=1, rest=2, attr=1, budget=120)
        assert str(q) == "<1 acco, 1 trans, 2 rest, 1 attr, $120>"
        assert "inf" in str(GroupQuery.of(rest=1))

    def test_counts_accept_string_keys(self):
        q = GroupQuery(counts={"rest": 2})
        assert q.count(Category.RESTAURANT) == 2


class TestCompositeItem:
    def _ci(self, poi_factory, query=None):
        pois = [
            poi_factory(poi_id=1, cat="acco", cost=2.0, poi_type="hotel"),
            poi_factory(poi_id=2, cat="trans", cost=1.0, poi_type="bus stop"),
            poi_factory(poi_id=3, cat="rest", cost=3.0),
            poi_factory(poi_id=4, cat="attr", cost=1.5, poi_type="monument"),
            poi_factory(poi_id=5, cat="attr", cost=1.5, poi_type="viewpoint",
                        lat=48.86),
            poi_factory(poi_id=6, cat="attr", cost=1.0, poi_type="art museum",
                        lat=48.87),
        ]
        return CompositeItem(pois)

    def test_duplicates_rejected(self, poi_factory):
        poi = poi_factory(poi_id=1)
        with pytest.raises(ValueError, match="same POI twice"):
            CompositeItem([poi, poi])

    def test_empty_needs_centroid(self):
        with pytest.raises(ValueError, match="explicit centroid"):
            CompositeItem([])
        ci = CompositeItem([], centroid=(48.85, 2.35))
        assert len(ci) == 0

    def test_default_centroid_is_mean(self, poi_factory):
        a = poi_factory(poi_id=1, lat=48.80, lon=2.30)
        b = poi_factory(poi_id=2, lat=48.90, lon=2.40)
        ci = CompositeItem([a, b])
        assert ci.centroid == (pytest.approx(48.85), pytest.approx(2.35))

    def test_total_cost_and_counts(self, poi_factory):
        ci = self._ci(poi_factory)
        assert ci.total_cost() == pytest.approx(10.0)
        counts = ci.category_counts()
        assert counts[Category.ATTRACTION] == 3

    def test_validity_against_query(self, poi_factory):
        ci = self._ci(poi_factory)
        good = GroupQuery.of(acco=1, trans=1, rest=1, attr=3, budget=10.0)
        assert ci.is_valid(good)
        assert not ci.is_valid(GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                                             budget=9.9))
        assert not ci.is_valid(GroupQuery.of(acco=2, trans=1, rest=1, attr=3))

    def test_validity_infinite_budget(self, poi_factory):
        ci = self._ci(poi_factory)
        assert ci.is_valid(GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                                         budget=math.inf))

    def test_membership(self, poi_factory):
        ci = self._ci(poi_factory)
        assert 1 in ci
        assert ci.pois[0] in ci
        assert 99 not in ci

    def test_without_preserves_centroid(self, poi_factory):
        ci = self._ci(poi_factory)
        smaller = ci.without(3)
        assert len(smaller) == len(ci) - 1
        assert smaller.centroid == ci.centroid
        with pytest.raises(KeyError):
            ci.without(99)

    def test_adding_rejects_duplicate(self, poi_factory):
        ci = self._ci(poi_factory)
        with pytest.raises(ValueError, match="already"):
            ci.adding(ci.pois[0])

    def test_replacing(self, poi_factory):
        ci = self._ci(poi_factory)
        new = poi_factory(poi_id=50, cat="rest")
        replaced = ci.replacing(3, new)
        assert 3 not in replaced
        assert 50 in replaced
        assert len(replaced) == len(ci)

    def test_internal_distance_non_negative(self, poi_factory):
        assert self._ci(poi_factory).internal_distance() >= 0.0
