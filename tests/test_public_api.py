"""Tests for the package's public surface: the README quickstart must
keep working."""

import pytest

import repro
from repro import (
    CompositeItem,
    ConsensusMethod,
    DEFAULT_QUERY,
    Group,
    GroupGenerator,
    GroupQuery,
    GroupTravel,
    KFCBuilder,
    ObjectiveWeights,
    POIDataset,
    TravelPackage,
    UserProfile,
    generate_city,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart(self):
        city = generate_city("paris", seed=7, scale=0.2)
        app = GroupTravel(city, seed=7, lda_iterations=10)
        group = GroupGenerator(app.schema, seed=13).uniform_group(5)
        package = app.build_package(
            group, DEFAULT_QUERY,
            method=ConsensusMethod.PAIRWISE_DISAGREEMENT,
        )
        assert isinstance(package, TravelPackage)
        assert package.is_valid()
        for ci in package:
            assert isinstance(ci, CompositeItem)
            assert all(poi.name for poi in ci)

    def test_types_are_the_canonical_ones(self):
        from repro.core.query import GroupQuery as Canonical

        assert GroupQuery is Canonical
        assert isinstance(DEFAULT_QUERY, GroupQuery)

    def test_kfc_and_weights_exported(self, app):
        assert isinstance(app.kfc, KFCBuilder)
        assert isinstance(app.kfc.weights, ObjectiveWeights)

    def test_dataset_type_exported(self, small_city):
        assert isinstance(small_city, POIDataset)

    def test_profile_types_exported(self, uniform_group):
        assert isinstance(uniform_group, Group)
        assert isinstance(uniform_group.members[0], UserProfile)
