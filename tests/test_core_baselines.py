"""Tests for the baseline packages."""

import pytest

from repro.core.baselines import (
    invalid_random_package,
    non_personalized_package,
    random_package,
)
from repro.core.query import GroupQuery


class TestRandomPackage:
    def test_valid_and_k_cis(self, small_city, default_query):
        tp = random_package(small_city, default_query, k=4, seed=1)
        assert tp.k == 4
        assert tp.is_valid(default_query)

    def test_deterministic(self, small_city, default_query):
        a = random_package(small_city, default_query, seed=2)
        b = random_package(small_city, default_query, seed=2)
        assert [ci.poi_ids for ci in a] == [ci.poi_ids for ci in b]

    def test_different_seeds_differ(self, small_city, default_query):
        a = random_package(small_city, default_query, seed=1)
        b = random_package(small_city, default_query, seed=2)
        assert [ci.poi_ids for ci in a] != [ci.poi_ids for ci in b]

    def test_budget_rejection_sampling(self, small_city):
        query = GroupQuery.of(rest=1, attr=1, budget=9.0)
        tp = random_package(small_city, query, seed=3)
        assert all(ci.total_cost() <= 9.0 for ci in tp)

    def test_impossible_budget_raises(self, small_city):
        query = GroupQuery.of(acco=1, trans=1, rest=1, attr=3, budget=0.01)
        with pytest.raises(ValueError, match="within budget"):
            random_package(small_city, query, seed=1)


class TestInvalidRandomPackage:
    def test_violates_query(self, small_city, default_query):
        tp = invalid_random_package(small_city, default_query, seed=4)
        assert not tp.is_valid(default_query)
        # Every CI individually violates the category counts.
        assert all(not ci.is_valid(default_query) for ci in tp)

    def test_still_plausible_size(self, small_city, default_query):
        tp = invalid_random_package(small_city, default_query, seed=5)
        for ci in tp:
            assert len(ci) == default_query.total_items()


class TestNonPersonalized:
    def test_valid_and_blind_to_profile(self, app, uniform_group,
                                        non_uniform_group, default_query):
        profile_a = uniform_group.profile()
        profile_b = non_uniform_group.profile()
        tp_a = non_personalized_package(app.kfc, profile_a, default_query)
        tp_b = non_personalized_package(app.kfc, profile_b, default_query)
        assert tp_a.is_valid(default_query)
        # gamma = 0: the profile must not influence the result.
        assert [ci.poi_ids for ci in tp_a] == [ci.poi_ids for ci in tp_b]

    def test_builder_weights_untouched(self, app, uniform_group,
                                       default_query):
        before = app.kfc.weights.gamma
        non_personalized_package(app.kfc, uniform_group.profile(),
                                 default_query)
        assert app.kfc.weights.gamma == before
