"""Tests for the simulated Foursquare augmentation service."""

import math

import numpy as np
import pytest

from repro.data.foursquare import FoursquareSimulator
from repro.data.poi import Category
from repro.data.taxonomy import (
    GENERIC_TAGS,
    TAXONOMY,
    full_vocabulary,
    tag_vocabulary,
    types_for,
)


class TestTaxonomy:
    def test_every_category_has_types(self):
        for cat in Category:
            assert len(types_for(cat)) >= 4

    def test_every_type_has_tags(self):
        for types in TAXONOMY.values():
            for poi_type in types:
                assert len(tag_vocabulary(poi_type)) >= 5

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            tag_vocabulary("space elevator")

    def test_full_vocabulary_includes_generics(self):
        vocab = full_vocabulary()
        assert set(GENERIC_TAGS) <= set(vocab)

    def test_category_vocabulary_smaller_than_full(self):
        assert len(full_vocabulary(Category.RESTAURANT)) < len(full_vocabulary())


class TestSimulator:
    def test_deterministic(self):
        a = FoursquareSimulator(seed=5)
        b = FoursquareSimulator(seed=5)
        assert [a.augment(Category.RESTAURANT) for _ in range(5)] == \
            [b.augment(Category.RESTAURANT) for _ in range(5)]

    def test_sample_type_in_taxonomy(self):
        sim = FoursquareSimulator(seed=1)
        for cat in Category:
            for _ in range(10):
                assert sim.sample_type(cat) in types_for(cat)

    def test_type_popularity_skew(self):
        """The first taxonomy type should dominate samples."""
        sim = FoursquareSimulator(seed=2)
        samples = [sim.sample_type(Category.ACCOMMODATION) for _ in range(400)]
        assert samples.count("hotel") > samples.count("college residence hall")

    def test_tags_unique_within_poi(self):
        sim = FoursquareSimulator(seed=3)
        for _ in range(30):
            tags = sim.sample_tags("french")
            assert len(set(tags)) == len(tags)

    def test_tags_come_from_known_pools(self):
        sim = FoursquareSimulator(seed=4)
        own = set(tag_vocabulary("japanese"))
        generic = set(GENERIC_TAGS)
        for _ in range(20):
            assert set(sim.sample_tags("japanese")) <= own | generic

    def test_cost_is_log_of_checkins(self):
        assert FoursquareSimulator.cost_from_checkins(100) == \
            pytest.approx(math.log(100))
        assert FoursquareSimulator.cost_from_checkins(0) == 0.0

    def test_checkins_heavy_tailed(self):
        sim = FoursquareSimulator(seed=6)
        counts = np.array([sim.sample_checkins() for _ in range(800)])
        assert counts.min() >= 3
        assert counts.max() <= 10_000
        # Log-uniform: median far below mean.
        assert np.median(counts) < counts.mean()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FoursquareSimulator(tags_per_poi=(0, 3))
        with pytest.raises(ValueError):
            FoursquareSimulator(generic_tag_share=1.0)
