"""Tests for similarity, the three optimization dimensions, uniformity
and min-max normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geo.distance import equirectangular_km
from repro.metrics.dimensions import (
    cohesiveness,
    personalization,
    raw_cohesiveness_sum,
    representativity,
)
from repro.metrics.normalize import min_max_normalize
from repro.metrics.similarity import cosine, cosine_matrix

unit_vectors = arrays(dtype=float, shape=st.integers(2, 10),
                      elements=st.floats(0.0, 1.0))


class TestCosine:
    def test_identical(self):
        assert cosine(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_convention(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            cosine(np.zeros(2), np.zeros(3))

    @given(a=unit_vectors)
    @settings(max_examples=80, deadline=None)
    def test_self_similarity_and_bounds(self, a):
        if np.linalg.norm(a) > 0:
            assert cosine(a, a) == pytest.approx(1.0)
        scaled = cosine(a, 2.0 * a + 1e-12)
        assert -1.0 - 1e-9 <= scaled <= 1.0 + 1e-9

    def test_matrix_agrees_with_pairwise(self):
        rng = np.random.default_rng(1)
        rows = rng.uniform(size=(5, 4))
        mat = cosine_matrix(rows)
        for i in range(5):
            for j in range(5):
                assert mat[i, j] == pytest.approx(cosine(rows[i], rows[j]))

    def test_matrix_zero_rows(self):
        rows = np.array([[0.0, 0.0], [1.0, 0.0]])
        mat = cosine_matrix(rows)
        assert mat[0, 0] == 0.0
        assert mat[0, 1] == 0.0


class TestDimensions:
    def test_representativity_two_centroids(self):
        centroids = np.array([[48.85, 2.35], [48.86, 2.36]])
        expected = float(equirectangular_km(48.85, 2.35, 48.86, 2.36))
        assert representativity(centroids) == pytest.approx(expected)

    def test_representativity_single_centroid_zero(self):
        assert representativity(np.array([[48.85, 2.35]])) == 0.0

    def test_representativity_shape_check(self):
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            representativity(np.zeros((2, 3)))

    def test_raw_cohesiveness_matches_manual(self, poi_factory):
        a = poi_factory(poi_id=1, lat=48.85, lon=2.35)
        b = poi_factory(poi_id=2, lat=48.86, lon=2.36)
        c = poi_factory(poi_id=3, lat=48.87, lon=2.37)
        total = raw_cohesiveness_sum([[a, b, c]])
        manual = sum(float(equirectangular_km(x.lat, x.lon, y.lat, y.lon))
                     for x, y in [(a, b), (a, c), (b, c)])
        assert total == pytest.approx(manual)

    def test_cohesiveness_is_s_minus_raw(self, poi_factory):
        a = poi_factory(poi_id=1, lat=48.85, lon=2.35)
        b = poi_factory(poi_id=2, lat=48.86, lon=2.36)
        raw = raw_cohesiveness_sum([[a, b]])
        assert cohesiveness([[a, b]], s_constant=100.0) == pytest.approx(100.0 - raw)

    def test_personalization_sums_cosines(self, app, small_city, uniform_group):
        profile = uniform_group.profile()
        pois = list(small_city.by_category("rest")[:3])
        total = personalization([pois], profile, app.item_index)
        manual = sum(cosine(app.item_index.vector(p), profile.vector(p.cat))
                     for p in pois)
        assert total == pytest.approx(manual)

    def test_compact_ci_more_cohesive_than_spread(self, poi_factory):
        tight = [poi_factory(poi_id=i, lat=48.85 + i * 1e-4, lon=2.35)
                 for i in range(3)]
        spread = [poi_factory(poi_id=i, lat=48.80 + i * 0.05, lon=2.35)
                  for i in range(3)]
        assert cohesiveness([tight], 100.0) > cohesiveness([spread], 100.0)


class TestNormalize:
    def test_basic(self):
        assert list(min_max_normalize([1.0, 2.0, 3.0])) == [0.0, 0.5, 1.0]

    def test_constant_sequence(self):
        assert np.allclose(min_max_normalize([2.0, 2.0]), 0.0)

    def test_empty(self):
        assert min_max_normalize([]).size == 0

    @given(values=st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_output_in_unit_interval(self, values):
        out = min_max_normalize(values)
        assert (out >= 0.0).all()
        assert (out <= 1.0).all()

    @given(values=st.lists(st.floats(-100, 100), min_size=2, max_size=30,
                           unique=True))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, values):
        """Normalization never reorders values (ties may appear from
        rounding, so assert monotonicity along the sorted input)."""
        out = min_max_normalize(values)
        order = np.argsort(values)
        sorted_out = out[order]
        assert (np.diff(sorted_out) >= -1e-12).all()
