"""Shared fixtures for the test suite.

Expensive artifacts (a small synthetic city and its fitted item
vectors) are built once per session; tests that need mutation work on
cheap derived objects.
"""

from __future__ import annotations

import pytest

from repro.core.builder import GroupTravel
from repro.core.query import GroupQuery
from repro.data.poi import POI, Category
from repro.data.synthetic import generate_city
from repro.profiles.generator import GroupGenerator


@pytest.fixture(scope="session")
def small_city():
    """A deterministic small Paris (roughly 100 POIs)."""
    return generate_city("paris", seed=42, scale=0.4)


@pytest.fixture(scope="session")
def app(small_city):
    """A GroupTravel system over the small city (quick LDA fit)."""
    return GroupTravel(small_city, seed=7, lda_iterations=30)


@pytest.fixture(scope="session")
def schema(app):
    return app.schema


@pytest.fixture()
def generator(schema):
    """A fresh, deterministic group generator per test."""
    return GroupGenerator(schema, seed=11)


@pytest.fixture(scope="session")
def default_query():
    return GroupQuery.of(acco=1, trans=1, rest=1, attr=3)


@pytest.fixture(scope="session")
def uniform_group(schema):
    return GroupGenerator(schema, seed=21).uniform_group(5)


@pytest.fixture(scope="session")
def non_uniform_group(schema):
    return GroupGenerator(schema, seed=22).non_uniform_group(5)


def make_poi(poi_id: int = 0, cat: Category | str = Category.RESTAURANT,
             lat: float = 48.85, lon: float = 2.35, cost: float = 1.0,
             poi_type: str = "french",
             tags: tuple[str, ...] = ("french", "wine")) -> POI:
    """Hand-rolled POI for unit tests that need precise geometry."""
    return POI(id=poi_id, name=f"poi-{poi_id}", cat=Category.parse(cat),
               lat=lat, lon=lon, type=poi_type, tags=tags, cost=cost)


@pytest.fixture()
def poi_factory():
    return make_poi
