"""Typed mutation records: validation, wire round-trip, replayable log."""

import json

import pytest

from repro.data.dataset import POIDataset
from repro.data.poi import Category
from repro.live.mutations import (
    AddPoi,
    ClosePoi,
    MutationError,
    MutationLog,
    RepricePoi,
    mutation_from_dict,
)

from conftest import make_poi


@pytest.fixture()
def city():
    return POIDataset(
        [
            make_poi(1, Category.ACCOMMODATION, poi_type="hotel", cost=80.0),
            make_poi(2, Category.RESTAURANT, cost=25.0),
            make_poi(3, Category.RESTAURANT, cost=40.0),
            make_poi(4, Category.ATTRACTION, poi_type="museum", cost=12.0),
        ],
        city="testville",
    )


class TestValidation:
    def test_close_unknown_poi_rejected(self, city):
        with pytest.raises(MutationError, match="not in"):
            ClosePoi(poi_id=99).validate(city)

    def test_close_last_poi_rejected(self):
        lone = POIDataset([make_poi(1)], city="tiny")
        with pytest.raises(MutationError, match="last POI"):
            ClosePoi(poi_id=1).validate(lone)

    def test_reprice_unknown_poi_rejected(self, city):
        with pytest.raises(MutationError, match="not in"):
            RepricePoi(poi_id=99, cost=1.0).validate(city)

    def test_reprice_negative_cost_rejected(self):
        with pytest.raises(MutationError, match="finite"):
            RepricePoi(poi_id=1, cost=-3.0)

    def test_reprice_nan_cost_rejected(self):
        with pytest.raises(MutationError, match="finite"):
            RepricePoi(poi_id=1, cost=float("nan"))

    def test_add_duplicate_id_rejected(self, city):
        with pytest.raises(MutationError, match="already exists"):
            AddPoi(poi=make_poi(2)).validate(city)


class TestApply:
    def test_close_removes_and_preserves_order(self, city):
        after = ClosePoi(poi_id=2).apply(city)
        assert [p.id for p in after] == [1, 3, 4]
        assert 2 not in after
        assert len(city) == 4, "apply must not touch the input dataset"

    def test_reprice_changes_only_cost_in_place(self, city):
        after = RepricePoi(poi_id=3, cost=99.5).apply(city)
        assert [p.id for p in after] == [1, 2, 3, 4]
        assert after[3].cost == 99.5
        assert after[3].tags == city[3].tags
        assert city[3].cost == 40.0

    def test_add_appends(self, city):
        poi = make_poi(10, Category.TRANSPORTATION, poi_type="metro")
        after = AddPoi(poi=poi).apply(city)
        assert [p.id for p in after] == [1, 2, 3, 4, 10]
        assert after.by_category(Category.TRANSPORTATION)[-1].id == 10

    def test_apply_validates(self, city):
        with pytest.raises(MutationError):
            ClosePoi(poi_id=99).apply(city)


class TestWireForm:
    @pytest.mark.parametrize("mutation", [
        ClosePoi(poi_id=7),
        RepricePoi(poi_id=3, cost=12.25),
        AddPoi(poi=make_poi(42, Category.ATTRACTION, poi_type="park",
                            tags=("garden",))),
    ])
    def test_json_round_trip(self, mutation):
        wire = json.loads(json.dumps(mutation.to_dict()))
        assert mutation_from_dict(wire) == mutation

    def test_unknown_kind_rejected(self):
        with pytest.raises(MutationError, match="unknown mutation kind"):
            mutation_from_dict({"kind": "rename_poi", "poi_id": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(MutationError, match="malformed"):
            mutation_from_dict({"kind": "reprice_poi", "poi_id": 1})

    def test_non_object_rejected(self):
        with pytest.raises(MutationError, match="must be an object"):
            mutation_from_dict(["close_poi", 1])


class TestMutationLog:
    def test_sequence_numbers_and_entries(self):
        log = MutationLog("testville", capacity=8)
        assert log.append(ClosePoi(poi_id=2)) == 1
        assert log.append(RepricePoi(poi_id=3, cost=5.0)) == 2
        assert len(log) == 2
        assert [m.kind for m in log.entries] == ["close_poi", "reprice_poi"]

    def test_bounded_append_only(self):
        log = MutationLog("testville", capacity=2)
        log.append(ClosePoi(poi_id=1))
        log.append(ClosePoi(poi_id=2))
        with pytest.raises(MutationError, match="full"):
            log.append(ClosePoi(poi_id=3))
        assert len(log) == 2

    def test_replay_is_deterministic(self, city):
        log = MutationLog("testville")
        log.append(RepricePoi(poi_id=2, cost=1.0))
        log.append(ClosePoi(poi_id=4))
        log.append(AddPoi(poi=make_poi(11, Category.RESTAURANT, cost=3.0)))
        once, twice = log.replay(city), log.replay(city)
        assert once.to_json() == twice.to_json()
        assert [p.id for p in once] == [1, 2, 3, 11]
        assert once[2].cost == 1.0

    def test_log_round_trips_through_json(self, city):
        log = MutationLog("testville")
        log.append(RepricePoi(poi_id=2, cost=1.0))
        log.append(AddPoi(poi=make_poi(11, Category.RESTAURANT)))
        wire = json.loads(json.dumps(log.to_dicts()))
        restored = MutationLog.from_dicts("testville", wire)
        assert restored.entries == log.entries
        assert restored.replay(city).to_json() == log.replay(city).to_json()
