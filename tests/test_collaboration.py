"""Tests for the collaboration models (the paper's future-work sketch)."""

import pytest

from repro.core.collaboration import (
    CollaborationModel,
    CustomizationRequest,
    run_collaboration,
    run_hybrid,
    run_sequential,
    run_star,
)
from repro.core.customize import InteractionKind


@pytest.fixture()
def session(app, uniform_group, default_query):
    profile = uniform_group.profile()
    package = app.kfc.build(profile, default_query)
    return app.customize(package, profile)


def remove_request(session, actor=0, ci=0, slot=0):
    return CustomizationRequest(
        actor=actor, kind=InteractionKind.REMOVE, ci_index=ci,
        poi_id=session.package[ci].pois[slot].id,
    )


def add_request(session, actor=0, ci=0):
    poi = session.suggest_additions(ci, k=1)[0]
    return CustomizationRequest(actor=actor, kind=InteractionKind.ADD,
                                ci_index=ci, poi=poi)


class TestRequest:
    def test_operand_validation(self):
        with pytest.raises(ValueError, match="missing its operand"):
            CustomizationRequest(actor=0, kind=InteractionKind.REMOVE)
        with pytest.raises(ValueError, match="missing its operand"):
            CustomizationRequest(actor=0, kind=InteractionKind.ADD)

    def test_conflict_detection(self, session):
        a = remove_request(session, actor=0, ci=0, slot=0)
        b = CustomizationRequest(actor=1, kind=InteractionKind.REPLACE,
                                 ci_index=0, poi_id=a.poi_id)
        c = remove_request(session, actor=2, ci=1, slot=0)
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)


class TestStar:
    def test_moderator_gates_requests(self, session):
        reqs = [remove_request(session, actor=1, ci=0, slot=0),
                remove_request(session, actor=2, ci=1, slot=0)]
        outcomes = run_star(session, reqs,
                            moderator=lambda r: r.actor == 1)
        assert outcomes[0].applied
        assert not outcomes[1].applied
        assert "moderator" in outcomes[1].reason
        # Only the approved removal reached the log.
        assert len(session.interactions) == 1

    def test_moderator_own_requests_bypass(self, session):
        req = remove_request(session, actor=9, ci=0, slot=0)
        outcomes = run_star(session, [req], moderator=lambda r: False,
                            moderator_actor=9)
        assert outcomes[0].applied


class TestSequential:
    def test_pipeline_applies_in_turn_order(self, session):
        first = [remove_request(session, actor=0, ci=0, slot=0)]
        second = [add_request(session, actor=1, ci=0)]
        outcomes = run_sequential(session, [first, second])
        assert all(o.applied for o in outcomes)
        assert [i.actor for i in session.interactions] == [0, 1]

    def test_stale_request_reported_not_raised(self, session):
        victim = session.package[0].pois[0]
        duplicate = CustomizationRequest(
            actor=1, kind=InteractionKind.REMOVE, ci_index=0,
            poi_id=victim.id,
        )
        outcomes = run_sequential(session, [
            [remove_request(session, actor=0, ci=0, slot=0)],
            [duplicate],
        ])
        assert outcomes[0].applied
        assert not outcomes[1].applied
        assert "stale" in outcomes[1].reason


class TestHybrid:
    def test_conflicting_requests_resolved(self, session):
        target = session.package[0].pois[0]
        a = CustomizationRequest(actor=0, kind=InteractionKind.REMOVE,
                                 ci_index=0, poi_id=target.id)
        b = CustomizationRequest(actor=1, kind=InteractionKind.REPLACE,
                                 ci_index=0, poi_id=target.id)
        outcomes = run_hybrid(session, [a, b])
        assert outcomes[0].applied
        assert not outcomes[1].applied
        assert "conflicts" in outcomes[1].reason

    def test_priority_overrides_arrival(self, session):
        target = session.package[0].pois[0]
        a = CustomizationRequest(actor=0, kind=InteractionKind.REMOVE,
                                 ci_index=0, poi_id=target.id)
        b = CustomizationRequest(actor=1, kind=InteractionKind.REPLACE,
                                 ci_index=0, poi_id=target.id)
        outcomes = run_hybrid(session, [a, b],
                              priority=lambda r: float(r.actor))
        assert not outcomes[0].applied
        assert outcomes[1].applied

    def test_non_conflicting_all_applied(self, session):
        reqs = [remove_request(session, actor=0, ci=0, slot=0),
                remove_request(session, actor=1, ci=1, slot=0),
                add_request(session, actor=2, ci=2)]
        outcomes = run_hybrid(session, reqs)
        assert all(o.applied for o in outcomes)


class TestDispatch:
    def test_sequential_grouping_by_actor(self, session):
        reqs = [remove_request(session, actor=1, ci=0, slot=0),
                remove_request(session, actor=0, ci=1, slot=0)]
        outcomes = run_collaboration(CollaborationModel.SEQUENTIAL,
                                     session, reqs)
        assert all(o.applied for o in outcomes)

    def test_star_via_dispatch(self, session):
        reqs = [remove_request(session, actor=0, ci=0, slot=0)]
        outcomes = run_collaboration("star", session, reqs,
                                     moderator=lambda r: True)
        assert outcomes[0].applied

    def test_hybrid_via_dispatch(self, session):
        reqs = [remove_request(session, actor=0, ci=0, slot=0)]
        outcomes = run_collaboration("hybrid", session, reqs)
        assert outcomes[0].applied

    def test_refinement_consumes_collaboration_log(self, session, app):
        reqs = [remove_request(session, actor=0, ci=0, slot=0),
                add_request(session, actor=1, ci=1)]
        run_collaboration("hybrid", session, reqs)
        refined = app.refine_profile_batch(session.profile, session)
        assert refined is not session.profile
