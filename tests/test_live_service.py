"""Live mutations through the serving tier (``repro.live`` + service).

The coherence contract under test: once a mutation has bumped a
city's epoch, **no subsequent request is served from pre-mutation
state**.  (Reads are epoch snapshots, not transactions: a request
racing the commit itself may observe the prior epoch once, as if it
had arrived a moment earlier -- see ``PackageService._ensure_fresh``.)
Cache
entries stop matching (the key carries the epoch), open sessions are
replayed onto the new epoch or fail with the structured
``stale_epoch`` code, byte accounting tracks patched array growth, and
an attached store receives the new version under its new dataset
content hash.
"""

from __future__ import annotations

import copy

import pytest

from conftest import make_poi
from repro.live import AddPoi, ClosePoi, MutationError, RepricePoi
from repro.service import (
    BuildRequest,
    CityRegistry,
    CustomizeRequest,
    GroupSpec,
    PackageService,
)
from repro.service.engine import StaleEpochError
from repro.service.loadgen import LoadgenConfig, build_workload, run_sync
from repro.service.shard import ShardCluster, ShardConfig
from repro.store import AssetStore


@pytest.fixture()
def registry(app):
    """A fresh registry per test: epochs and mutation logs must not
    leak between tests.  Registration reuses the session's pre-fitted
    Paris (no extra LDA fit), but copies the index: AddPoi extends it
    in place, and the session-scoped one must stay pristine."""
    registry = CityRegistry(seed=7, scale=0.4, lda_iterations=30)
    registry.register(app.dataset, copy.deepcopy(app.item_index),
                      name="paris")
    return registry


@pytest.fixture()
def service(registry):
    return PackageService(registry, cache_capacity=32)


@pytest.fixture()
def spec_request():
    return BuildRequest(city="paris",
                        group_spec=GroupSpec(size=4, uniform=True, seed=5))


def _any_poi(registry):
    return next(iter(registry.dataset("paris")))


class TestEpochInvalidation:
    def test_mutation_invalidates_warm_cache(self, registry, service,
                                             spec_request):
        cold = service.build(spec_request)
        warm = service.build(spec_request)
        assert not cold.cached and warm.cached

        poi = _any_poi(registry)
        receipt = registry.mutate(
            "paris", RepricePoi(poi_id=poi.id, cost=poi.cost + 1.0))
        assert receipt["epoch"] == 1 and registry.epoch("paris") == 1

        # Structural miss: the cache key carries the epoch, so the
        # pre-mutation entry simply stops matching -- no purge ran.
        after = service.build(spec_request)
        assert not after.cached
        assert service.build(spec_request).cached  # new epoch re-warms

    def test_no_stale_reads_after_reprice(self, registry, service,
                                          spec_request):
        service.build(spec_request)
        poi = _any_poi(registry)
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 0.5))
        current = registry.dataset("paris")
        assert current[poi.id].cost == pytest.approx(poi.cost + 0.5)

        after = service.build(spec_request)
        assert after.ok
        # Every served POI carries the *current* dataset's cost: the
        # response was derived from post-mutation state, nothing else.
        for ci in after.package.composite_items:
            for served in ci.pois:
                assert served.cost == current[served.id].cost


class TestSessionReplay:
    def _open_and_remove(self, service, spec_request):
        opened = service.open_session(spec_request)
        assert opened.ok
        victim = opened.package.composite_items[0].pois[-1].id
        removed = service.apply(CustomizeRequest(
            session_id=opened.session_id, op="remove", ci_index=0,
            poi_id=victim))
        assert removed.ok
        return opened.session_id, victim, removed

    def test_session_replays_over_a_compatible_mutation(self, registry,
                                                        service,
                                                        spec_request):
        session_id, victim, removed = self._open_and_remove(service,
                                                            spec_request)
        # Reprice to the *same* cost: the epoch bumps but the rebuilt
        # package is identical, so the logged REMOVE replays cleanly.
        poi = _any_poi(registry)
        registry.mutate("paris", RepricePoi(poi_id=poi.id, cost=poi.cost))

        second = removed.package.composite_items[0].pois[-1].id
        response = service.apply(CustomizeRequest(
            session_id=session_id, op="remove", ci_index=0,
            poi_id=second))
        assert response.ok
        pois = {p.id for p in response.package.composite_items[0].pois}
        assert victim not in pois and second not in pois
        assert service.live_stats()["sessions_replayed"] == 1
        assert service.live_stats()["sessions_stale"] == 0

        # The session now rides the new epoch: no second replay.
        service.apply(CustomizeRequest(
            session_id=session_id, op="remove", ci_index=1,
            poi_id=response.package.composite_items[1].pois[-1].id))
        assert service.live_stats()["sessions_replayed"] == 1

    def test_unreplayable_session_gets_stale_epoch_code(self, registry,
                                                        service,
                                                        spec_request):
        session_id, victim, removed = self._open_and_remove(service,
                                                            spec_request)
        # Closing the removed POI makes the edit log unreplayable: the
        # epoch-1 rebuild cannot contain the victim, so the logged
        # REMOVE no longer applies.
        registry.mutate("paris", ClosePoi(poi_id=victim))

        second = removed.package.composite_items[0].pois[-1].id
        response = service.apply(CustomizeRequest(
            session_id=session_id, op="remove", ci_index=0,
            poi_id=second))
        assert not response.ok
        assert response.code == "stale_epoch"
        assert service.live_stats()["sessions_stale"] == 1

        # refine() on the same pinned session surfaces the same state.
        with pytest.raises(StaleEpochError):
            service.refine(session_id)


class TestMutateWireOp:
    def test_mutate_dispatch_roundtrip(self, service):
        poi = _any_poi(service.registry)
        out = service.dispatch("mutate", {
            "city": "paris",
            "mutation": {"kind": "reprice_poi", "poi_id": poi.id,
                         "cost": round(poi.cost + 0.75, 4)},
            "request_id": "m-1",
        })
        assert out.get("error") is None
        assert out["epoch"] == 1 and out["seq"] == 1
        assert out["patched"] is True and out["patch_ms"] >= 0.0
        assert out["request_id"] == "m-1" and out["latency_ms"] > 0

        stats = service.stats()
        assert stats["live"]["mutations_applied"] == 1
        assert stats["live"]["full_rebuilds"] == 0
        assert stats["registry"]["epochs"] == {"paris": 1}

    def test_mutate_error_responses(self, service):
        unknown_poi = service.dispatch("mutate", {
            "city": "paris",
            "mutation": {"kind": "reprice_poi", "poi_id": 10 ** 9,
                         "cost": 1.0},
        })
        assert unknown_poi["error"] and unknown_poi["code"] == "invalid"

        malformed = service.dispatch("mutate", {
            "city": "paris", "mutation": {"kind": "teleport_poi"},
        })
        assert malformed["error"] and malformed["code"] == "invalid"

        no_city = service.dispatch("mutate", {
            "mutation": {"kind": "reprice_poi", "poi_id": 1, "cost": 1.0},
        })
        assert no_city["error"] is not None
        assert service.live_stats()["mutations_applied"] == 0

    def test_cluster_routes_mutate_and_merges_live_stats(self, app):
        registry = CityRegistry(seed=7, scale=0.4, lda_iterations=30)
        registry.register(app.dataset, copy.deepcopy(app.item_index),
                          name="paris")
        cluster = ShardCluster(
            shards=2, config=ShardConfig(scale=0.4),
            cities=["paris", "barcelona"], use_processes=False,
            service_factory=lambda i: PackageService(registry,
                                                     cache_capacity=16))
        try:
            poi = next(iter(registry.dataset("paris")))
            out = cluster.dispatch("mutate", {
                "city": "paris",
                "mutation": {"kind": "reprice_poi", "poi_id": poi.id,
                             "cost": round(poi.cost + 0.5, 4)},
            })
            assert out.get("error") is None and out["epoch"] == 1
            merged = cluster.stats()
            assert merged["live"]["mutations_applied"] == 1
        finally:
            cluster.shutdown()


class TestByteAccounting:
    def test_install_reestimates_bytes_after_growth(self, registry):
        registry.entry("paris")
        before = registry.stats()["bytes_by_city"]["paris"]
        next_id = max(p.id for p in registry.dataset("paris")) + 1
        for i in range(5):
            registry.mutate("paris", AddPoi(poi=make_poi(
                next_id + i, lat=48.85 + 0.001 * i, lon=2.35 + 0.001 * i,
                cost=2.0 + i)))
        grown = registry.stats()["bytes_by_city"]["paris"]
        assert grown > before

        registry.mutate("paris", ClosePoi(poi_id=next_id))
        assert registry.stats()["bytes_by_city"]["paris"] < grown

    def test_mutation_log_journals_and_replays(self, registry):
        poi = _any_poi(registry)
        base = registry.dataset("paris")
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 2.0))
        registry.mutate("paris", ClosePoi(poi_id=poi.id))
        log = registry.mutation_log("paris")
        assert [m.kind for m in log.entries] == ["reprice_poi", "close_poi"]
        replayed = log.replay(base)
        assert replayed.to_json() == registry.dataset("paris").to_json()


class TestEvictionReload:
    """A mutated city must survive LRU eviction: the reload replays
    the journal (or hydrates the mutated version from the store), so
    the persisted epoch is never stamped onto pre-mutation data."""

    FAST = dict(seed=11, scale=0.2, lda_iterations=8)

    def _mutate_twice(self, registry):
        base = registry.entry("paris").dataset
        poi = next(iter(base))
        added_id = max(p.id for p in base) + 1
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 2.0))
        registry.mutate("paris", AddPoi(poi=make_poi(
            added_id, lat=48.86, lon=2.34, cost=3.0)))
        return poi, added_id, registry.dataset("paris").to_json()

    def test_reload_without_store_replays_the_journal(self):
        registry = CityRegistry(max_cities=1, **self.FAST)
        poi, added_id, expected = self._mutate_twice(registry)
        registry.entry("rome")  # max_cities=1: evicts mutated paris
        assert registry.loaded() == ("rome",)

        reloaded = registry.entry("paris")
        assert reloaded.epoch == 2 == registry.epoch("paris")
        assert reloaded.dataset.to_json() == expected
        assert reloaded.dataset[poi.id].cost == pytest.approx(poi.cost + 2.0)
        assert added_id in reloaded.dataset
        assert registry.stats()["counters"]["log_replays"] == 1

    def test_reload_with_store_reproduces_the_mutated_dataset(self,
                                                              tmp_path):
        registry = CityRegistry(store=AssetStore(tmp_path / "assets"),
                                max_cities=1, **self.FAST)
        poi, added_id, expected = self._mutate_twice(registry)
        registry.entry("rome")
        reloaded = registry.entry("paris")
        assert reloaded.epoch == 2
        assert reloaded.dataset.to_json() == expected

    def test_reregister_after_eviction_bumps_epoch(self, app):
        registry = CityRegistry(seed=7, scale=0.4, lda_iterations=30,
                                max_cities=1)
        registry.register(app.dataset, copy.deepcopy(app.item_index),
                          name="paris")
        poi = next(iter(registry.dataset("paris")))
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 1.0))
        assert registry.epoch("paris") == 1
        registry.register(app.dataset, copy.deepcopy(app.item_index),
                          name="other")  # evicts mutated paris
        assert registry.loaded() == ("other",)

        # The new base under the old name is a *different* dataset:
        # epoch-pinned state from the mutated epoch 1 must not match,
        # and the stale journal must not describe the new base.
        registry.register(app.dataset, copy.deepcopy(app.item_index),
                          name="paris")
        assert registry.epoch("paris") == 2
        assert registry.mutation_log("paris") is None
        assert registry.entry("paris").epoch == 2


class TestStoreWriteback:
    def test_mutation_writes_back_under_new_hash(self, app, tmp_path):
        store = AssetStore(tmp_path / "assets")
        registry = CityRegistry(seed=7, scale=0.4, lda_iterations=30,
                                store=store)
        registry.register(app.dataset, copy.deepcopy(app.item_index),
                          name="paris")
        poi = next(iter(registry.dataset("paris")))
        receipt = registry.mutate(
            "paris", RepricePoi(poi_id=poi.id, cost=poi.cost + 0.5))
        assert receipt["dataset_hash"]
        assert any(f"-d{receipt['dataset_hash'][:8]}" in name
                   for name in store.keys())
        loaded = store.load("paris", seed=7, scale=0.4, lda_iterations=30,
                            dataset_hash=receipt["dataset_hash"])
        assert loaded is not None
        assert loaded.dataset[poi.id].cost == pytest.approx(poi.cost + 0.5)


class TestLoadgenLive:
    def test_run_sync_mutate_mix_reports_epoch_churn(self, service):
        config = LoadgenConfig(cities=("paris",), actions=12, seed=3,
                               mix=(("warm", 0.5), ("mutate", 0.5)))
        workload = build_workload(config)
        assert any(action.kind == "mutate" for action in workload)

        report = run_sync(service.dispatch, workload)
        assert report.errors == 0 and report.failed_connections == 0
        assert report.mutations_sent > 0
        # Every applied mutation is one epoch bump, all caused (and
        # observed) by this run.
        assert report.epochs_seen["paris"] == report.mutations_sent
        assert report.epoch_bumps == report.mutations_sent
        assert "epoch bump(s) observed" in report.summary()
        assert service.live_stats()["mutations_applied"] \
            == report.mutations_sent

    def test_mutate_weight_requires_known_kind(self):
        with pytest.raises(ValueError, match="unknown traffic kinds"):
            LoadgenConfig(mix=(("mutte", 1.0),))
        config = LoadgenConfig(mix=(("mutate", 1.0),), actions=3)
        assert all(a.kind == "mutate" for a in build_workload(config))


def test_full_mutation_log_is_an_invalid_request(registry, service):
    """A journal at capacity refuses further mutations end to end."""
    registry.mutation_log_capacity = 2
    poi = _any_poi(registry)
    for _ in range(2):
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 1.0))
    with pytest.raises(MutationError, match="full"):
        registry.mutate("paris",
                        RepricePoi(poi_id=poi.id, cost=poi.cost + 3.0))
    out = service.dispatch("mutate", {
        "city": "paris",
        "mutation": {"kind": "reprice_poi", "poi_id": poi.id, "cost": 9.0},
    })
    assert out["error"] and out["code"] == "invalid"
