"""Tests for the tag corpus and the collapsed-Gibbs LDA."""

import numpy as np
import pytest

from repro.topics.corpus import TagCorpus
from repro.topics.lda import LatentDirichletAllocation


@pytest.fixture(scope="module")
def two_topic_corpus():
    """A corpus with two obvious latent topics."""
    rng = np.random.default_rng(0)
    food = ["sushi", "ramen", "sake", "japanese", "tempura"]
    art = ["museum", "gallery", "paintings", "sculpture", "exhibition"]
    docs = []
    for _ in range(40):
        vocab = food if rng.uniform() < 0.5 else art
        docs.append([vocab[int(i)] for i in rng.integers(0, 5, size=6)])
    return TagCorpus(docs)


class TestTagCorpus:
    def test_vocabulary_and_tokens(self):
        corpus = TagCorpus([("a", "b"), ("b", "c")])
        assert corpus.vocabulary_size == 3
        assert corpus.total_tokens() == 4
        assert corpus.word(corpus.token_id("b")) == "b"

    def test_min_count_prunes_rare_tags(self):
        corpus = TagCorpus([("a", "b"), ("b", "c")], min_count=2)
        assert corpus.vocabulary == ("b",)
        assert len(corpus.document(0)) == 1

    def test_document_order_preserved(self):
        corpus = TagCorpus([("a",), ("b",), ("a", "b")])
        assert len(corpus) == 3
        assert [len(corpus.document(i)) for i in range(3)] == [1, 1, 2]

    def test_empty_documents_allowed(self):
        corpus = TagCorpus([(), ("a",)])
        assert len(corpus.document(0)) == 0


class TestLDA:
    def test_requires_positive_parameters(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(0)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(2, n_iterations=0)

    def test_default_alpha_is_griffiths(self):
        assert LatentDirichletAllocation(10).alpha == pytest.approx(5.0)

    def test_fit_on_empty_vocabulary_raises(self):
        with pytest.raises(ValueError, match="empty vocabulary"):
            LatentDirichletAllocation(2).fit(TagCorpus([]))

    def test_unfitted_access_raises(self):
        lda = LatentDirichletAllocation(2)
        with pytest.raises(RuntimeError, match="not fitted"):
            lda.document_topics()

    def test_document_topics_rows_sum_to_one(self, two_topic_corpus):
        lda = LatentDirichletAllocation(3, n_iterations=20, seed=1)
        theta = lda.fit(two_topic_corpus).document_topics()
        assert theta.shape == (len(two_topic_corpus), 3)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    def test_topic_words_rows_sum_to_one(self, two_topic_corpus):
        lda = LatentDirichletAllocation(3, n_iterations=20, seed=1)
        phi = lda.fit(two_topic_corpus).topic_words()
        assert np.allclose(phi.sum(axis=1), 1.0)

    def test_recovers_planted_topics(self, two_topic_corpus):
        """With a sparse prior, food and art tags should separate."""
        lda = LatentDirichletAllocation(2, alpha=0.1, n_iterations=80, seed=2)
        lda.fit(two_topic_corpus)
        top0 = set(lda.top_words(0, n=5))
        top1 = set(lda.top_words(1, n=5))
        food = {"sushi", "ramen", "sake", "japanese", "tempura"}
        art = {"museum", "gallery", "paintings", "sculpture", "exhibition"}
        # One topic should be mostly food, the other mostly art.
        purity = max(len(top0 & food) + len(top1 & art),
                     len(top0 & art) + len(top1 & food))
        assert purity >= 8

    def test_perplexity_better_than_uniform(self, two_topic_corpus):
        lda = LatentDirichletAllocation(2, alpha=0.1, n_iterations=60, seed=3)
        lda.fit(two_topic_corpus)
        uniform_perplexity = two_topic_corpus.vocabulary_size
        assert lda.perplexity() < uniform_perplexity

    def test_deterministic_given_seed(self, two_topic_corpus):
        a = LatentDirichletAllocation(2, n_iterations=10, seed=5).fit(two_topic_corpus)
        b = LatentDirichletAllocation(2, n_iterations=10, seed=5).fit(two_topic_corpus)
        assert np.allclose(a.document_topics(), b.document_topics())

    def test_topic_labels_shape(self, two_topic_corpus):
        lda = LatentDirichletAllocation(2, n_iterations=10, seed=1)
        labels = lda.fit(two_topic_corpus).topic_labels(n_words=3)
        assert len(labels) == 2
        assert all(len(label.split(", ")) == 3 for label in labels)


class TestFoldIn:
    def test_infer_theta_sums_to_one(self, two_topic_corpus):
        lda = LatentDirichletAllocation(2, alpha=0.1, n_iterations=60, seed=2)
        lda.fit(two_topic_corpus)
        theta = lda.infer_theta(["sushi", "ramen", "sake"])
        assert theta.shape == (2,)
        assert theta.sum() == pytest.approx(1.0)

    def test_infer_theta_assigns_right_topic(self, two_topic_corpus):
        lda = LatentDirichletAllocation(2, alpha=0.1, n_iterations=60, seed=2)
        lda.fit(two_topic_corpus)
        food_theta = lda.infer_theta(["sushi", "ramen", "sake", "tempura"])
        art_theta = lda.infer_theta(["museum", "gallery", "paintings"])
        assert np.argmax(food_theta) != np.argmax(art_theta)

    def test_unknown_tags_fall_back_to_uniform(self, two_topic_corpus):
        lda = LatentDirichletAllocation(2, n_iterations=10, seed=2)
        lda.fit(two_topic_corpus)
        theta = lda.infer_theta(["quantum", "blockchain"])
        assert np.allclose(theta, 0.5)
