"""Tests for the POIDataset container."""

import pytest

from repro.data.dataset import POIDataset
from repro.data.poi import Category


class TestContainer:
    def test_len_iter_contains(self, small_city):
        assert len(small_city) == len(list(small_city))
        first = next(iter(small_city))
        assert first.id in small_city

    def test_getitem_and_get(self, small_city):
        first = next(iter(small_city))
        assert small_city[first.id] == first
        assert small_city.get(first.id) == first
        assert small_city.get(-1) is None

    def test_getitem_missing_raises(self, small_city):
        with pytest.raises(KeyError, match="no POI with id"):
            small_city[999_999]

    def test_duplicate_ids_rejected(self, poi_factory):
        poi = poi_factory(poi_id=1)
        with pytest.raises(ValueError, match="duplicate"):
            POIDataset([poi, poi])

    def test_category_views_partition_dataset(self, small_city):
        counts = small_city.category_counts()
        assert sum(counts.values()) == len(small_city)
        for cat, pois in ((c, small_city.by_category(c)) for c in Category):
            assert all(p.cat == cat for p in pois)

    def test_repr_mentions_city(self, small_city):
        assert "paris" in repr(small_city)


class TestGeometry:
    def test_coordinates_shape(self, small_city):
        coords = small_city.coordinates()
        assert coords.shape == (len(small_city), 2)

    def test_coordinates_of_subset(self, small_city):
        rest = small_city.by_category("rest")[:3]
        assert small_city.coordinates(rest).shape == (3, 2)

    def test_coordinates_empty(self, poi_factory):
        ds = POIDataset([poi_factory()])
        assert ds.coordinates([]).shape == (0, 2)

    def test_max_distance_cached_and_positive(self, small_city):
        first = small_city.max_distance_km
        assert first > 0
        assert small_city.max_distance_km == first

    def test_nearest_respects_category(self, small_city):
        lat, lon = small_city.coordinates().mean(axis=0)
        found = small_city.nearest(float(lat), float(lon), k=3,
                                   category="rest")
        assert len(found) == 3
        assert all(p.cat == Category.RESTAURANT for p in found)

    def test_nearest_excludes_ids(self, small_city):
        lat, lon = small_city.coordinates().mean(axis=0)
        top = small_city.nearest(float(lat), float(lon), k=1)[0]
        found = small_city.nearest(float(lat), float(lon), k=1,
                                   exclude={top.id})
        assert found[0].id != top.id

    def test_nearest_by_type(self, small_city):
        some = small_city.by_category("acco")[0]
        found = small_city.nearest(some.lat, some.lon, k=1,
                                   poi_type=some.type)
        assert found[0].type == some.type


class TestPersistence:
    def test_json_roundtrip(self, small_city):
        clone = POIDataset.from_json(small_city.to_json())
        assert len(clone) == len(small_city)
        assert clone.city == small_city.city
        some_id = small_city.ids[5]
        assert clone[some_id] == small_city[some_id]

    def test_save_and_load(self, small_city, tmp_path):
        path = tmp_path / "city.json"
        small_city.save(path)
        assert POIDataset.load(path).category_counts() == \
            small_city.category_counts()

    def test_subset(self, small_city):
        ids = small_city.ids[:10]
        sub = small_city.subset(ids)
        assert len(sub) == 10
        assert set(sub.ids) == set(ids)
