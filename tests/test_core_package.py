"""Tests for TravelPackage and the Equation 1 objective evaluation."""

import numpy as np
import pytest

from repro.core.composite import CompositeItem
from repro.core.objective import (
    ObjectiveWeights,
    evaluate_objective,
    fuzzy_memberships,
    normalized_distances_to_centroids,
)
from repro.core.package import TravelPackage
from repro.core.query import DEFAULT_QUERY


@pytest.fixture()
def package(app, uniform_group, default_query):
    profile = uniform_group.profile()
    return app.kfc.build(profile, default_query)


class TestTravelPackage:
    def test_requires_cis(self):
        with pytest.raises(ValueError, match="at least one"):
            TravelPackage([])

    def test_len_iter_getitem(self, package):
        assert package.k == len(package) == 5
        assert package[0] is list(package)[0]

    def test_centroids_shape(self, package):
        assert package.centroids().shape == (5, 2)

    def test_all_pois_counts_repeats(self, package, default_query):
        assert len(package.all_pois()) == 5 * default_query.total_items()

    def test_validity(self, package, default_query):
        assert package.is_valid()
        assert package.is_valid(default_query)

    def test_is_valid_without_query_raises(self, package, poi_factory):
        bare = TravelPackage([CompositeItem([poi_factory()])])
        with pytest.raises(ValueError, match="no query"):
            bare.is_valid()

    def test_with_composite_item(self, package, poi_factory):
        replacement = CompositeItem([poi_factory(poi_id=12_345)])
        updated = package.with_composite_item(0, replacement)
        assert updated[0] is replacement
        assert package[0] is not replacement

    def test_appending_and_removing(self, package, poi_factory):
        extra = CompositeItem([poi_factory(poi_id=54_321)])
        bigger = package.appending(extra)
        assert bigger.k == package.k + 1
        smaller = bigger.without_composite_item(bigger.k - 1)
        assert smaller.k == package.k

    def test_metric_wrappers_agree_with_functions(self, package, app,
                                                  uniform_group):
        from repro.metrics.dimensions import representativity

        assert package.representativity() == pytest.approx(
            representativity(package.centroids())
        )
        s = package.raw_cohesiveness_sum() + 1.0
        assert package.cohesiveness(s) == pytest.approx(1.0)
        profile = uniform_group.profile()
        assert package.personalization(profile, app.item_index) > 0.0


class TestObjective:
    def test_weights_validation(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(alpha=-0.1)

    def test_fuzzy_memberships_partition(self):
        rng = np.random.default_rng(0)
        dists = rng.uniform(0.1, 1.0, size=(20, 4))
        w = fuzzy_memberships(dists)
        assert np.allclose(w.sum(axis=1), 1.0)

    def test_fuzzy_memberships_zero_distance(self):
        dists = np.array([[0.0, 1.0], [0.5, 0.5]])
        w = fuzzy_memberships(dists)
        assert w[0, 0] == pytest.approx(1.0)
        assert w[1, 0] == pytest.approx(0.5)

    def test_fuzzy_memberships_bad_fuzzifier(self):
        with pytest.raises(ValueError):
            fuzzy_memberships(np.ones((2, 2)), fuzzifier=1.0)

    def test_fuzzy_memberships_bit_identical_to_tensor_form(self):
        """The (n, k)-memory implementation must reproduce the original
        (n, k, k) broadcast *exactly* -- golden-pinned package centroids
        flow through these values, so drift of even one ulp is a
        regression, not noise."""

        def tensor_reference(distances, fuzzifier):
            d = np.asarray(distances, dtype=float)
            zero_rows = np.isclose(d, 0.0).any(axis=1)
            safe = np.maximum(d, 1e-300)
            exponent = 2.0 / (fuzzifier - 1.0)
            ratio = safe[:, :, None] / safe[:, None, :]
            memberships = 1.0 / (ratio ** exponent).sum(axis=2)
            for i in np.flatnonzero(zero_rows):
                hits = np.isclose(d[i], 0.0)
                memberships[i] = hits / hits.sum()
            return memberships

        rng = np.random.default_rng(7)
        for n, k in ((1, 2), (17, 3), (200, 5), (123, 8)):
            dists = rng.uniform(0.0, 3.0, size=(n, k))
            dists[rng.uniform(size=n) < 0.1] = 0.0  # coincident rows
            for fuzzifier in (1.3, 2.0, 3.5):
                got = fuzzy_memberships(dists, fuzzifier)
                want = tensor_reference(dists, fuzzifier)
                assert np.array_equal(got, want)

    def test_fcm_memberships_bit_identical_to_tensor_form(self):
        """Same pin for the clustering-side update (it shares the
        rewrite and feeds FCM centroid seeding)."""
        from repro.clustering.fuzzy_cmeans import FuzzyCMeans

        def tensor_reference(sq, exponent):
            zero_rows = np.isclose(sq, 0.0).any(axis=1)
            safe = np.maximum(sq, 1e-300)
            ratio = safe[:, :, None] / safe[:, None, :]
            memberships = 1.0 / (ratio ** (exponent / 2.0)).sum(axis=2)
            for i in np.flatnonzero(zero_rows):
                hits = np.isclose(sq[i], 0.0)
                memberships[i] = hits / hits.sum()
            return memberships

        rng = np.random.default_rng(11)
        x = rng.uniform(-5, 5, size=(150, 2))
        fcm = FuzzyCMeans(n_clusters=4, seed=3)
        centroids = x[:4].copy()
        exponent = 2.0 / (fcm.m - 1.0)
        got = fcm._memberships(x, centroids, exponent)
        want = tensor_reference(fcm._sq_distances(x, centroids), exponent)
        assert np.array_equal(got, want)

    def test_normalized_distances_in_unit_range(self, app, package):
        dist = normalized_distances_to_centroids(app.dataset,
                                                 package.centroids())
        assert dist.shape == (len(app.dataset), package.k)
        assert dist.min() >= 0.0
        assert dist.max() <= 1.0 + 1e-9

    def test_objective_positive_and_finite(self, app, package, uniform_group):
        profile = uniform_group.profile()
        value = evaluate_objective(app.dataset, package, profile,
                                   app.item_index)
        assert np.isfinite(value)
        assert value > 0.0

    def test_kfc_beats_random_package(self, app, uniform_group,
                                      default_query):
        from repro.core.baselines import random_package

        profile = uniform_group.profile()
        kfc_tp = app.kfc.build(profile, default_query)
        rand_tp = random_package(app.dataset, default_query, seed=5)
        weights = ObjectiveWeights()
        assert evaluate_objective(app.dataset, kfc_tp, profile,
                                  app.item_index, weights) > \
            evaluate_objective(app.dataset, rand_tp, profile,
                               app.item_index, weights)

    def test_gamma_scaling_monotone(self, app, package, uniform_group):
        """More personalization weight can only raise the score of a
        fixed package (all cosine terms are non-negative here)."""
        profile = uniform_group.profile()
        low = evaluate_objective(app.dataset, package, profile,
                                 app.item_index, ObjectiveWeights(gamma=0.5))
        high = evaluate_objective(app.dataset, package, profile,
                                  app.item_index, ObjectiveWeights(gamma=2.0))
        assert high >= low
