"""Tests for the statistics substrate, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats as scipy_stats
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats.anova import one_way_anova
from repro.stats.correlation import pearson_correlation
from repro.stats.sample_size import required_sample_size, z_score
from repro.stats.special import (
    f_distribution_sf,
    log_gamma,
    regularized_incomplete_beta,
)

samples = st.lists(st.floats(-50, 50), min_size=3, max_size=40)


class TestSpecialFunctions:
    @given(x=st.floats(0.05, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_log_gamma_matches_scipy(self, x):
        from scipy.special import gammaln
        assert log_gamma(x) == pytest.approx(float(gammaln(x)), abs=1e-9)

    def test_log_gamma_known_values(self):
        import math
        assert log_gamma(1.0) == pytest.approx(0.0, abs=1e-12)
        assert log_gamma(2.0) == pytest.approx(0.0, abs=1e-12)
        assert log_gamma(5.0) == pytest.approx(math.log(24.0), abs=1e-10)
        assert log_gamma(0.5) == pytest.approx(math.log(math.pi) / 2, abs=1e-10)

    def test_log_gamma_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log_gamma(0.0)

    @given(a=st.floats(0.2, 20), b=st.floats(0.2, 20), x=st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_incomplete_beta_matches_scipy(self, a, b, x):
        from scipy.special import betainc
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            float(betainc(a, b, x)), abs=1e-9
        )

    def test_incomplete_beta_bounds(self):
        assert regularized_incomplete_beta(2, 3, 0.0) == 0.0
        assert regularized_incomplete_beta(2, 3, 1.0) == 1.0
        with pytest.raises(ValueError):
            regularized_incomplete_beta(-1, 2, 0.5)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1, 2, 1.5)

    @given(f=st.floats(0.01, 50), d1=st.integers(1, 20), d2=st.integers(2, 200))
    @settings(max_examples=120, deadline=None)
    def test_f_sf_matches_scipy(self, f, d1, d2):
        assert f_distribution_sf(f, d1, d2) == pytest.approx(
            float(scipy_stats.f.sf(f, d1, d2)), abs=1e-9
        )


class TestAnova:
    def test_matches_scipy_on_random_groups(self):
        rng = np.random.default_rng(3)
        groups = [rng.normal(loc, 1.0, size=30) for loc in (0.0, 0.4, 1.0)]
        mine = one_way_anova(*groups)
        ref = scipy_stats.f_oneway(*groups)
        assert mine.f_value == pytest.approx(float(ref.statistic))
        assert mine.p_value == pytest.approx(float(ref.pvalue), abs=1e-12)

    @given(a=samples, b=samples, c=samples)
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scipy(self, a, b, c):
        data = np.concatenate([a, b, c])
        spread = float(np.max(np.abs(data - data.mean())))
        # Discard ill-conditioned inputs (all observations equal up to
        # rounding noise): there both algorithms are dominated by
        # cancellation error and agreement is meaningless.  Our
        # implementation rescales and stays accurate; scipy does not.
        assume(spread == 0.0
               or spread > 1e-6 * max(1.0, float(np.max(np.abs(data)))))
        mine = one_way_anova(a, b, c)
        ref = scipy_stats.f_oneway(np.array(a), np.array(b), np.array(c))
        if np.isnan(ref.statistic) or np.isnan(ref.pvalue):
            # scipy returns NaN for degenerate inputs (zero variance);
            # we take a defined convention instead.
            assert mine.p_value in (0.0, 1.0)
        else:
            assert mine.f_value == pytest.approx(float(ref.statistic),
                                                 rel=1e-6, abs=1e-12)
            assert mine.p_value == pytest.approx(float(ref.pvalue), abs=1e-9)

    def test_subnormal_scale_inputs_stay_accurate(self):
        # Regression (hypothesis-found): observations of order 1e-160
        # square into the subnormal range, where the naive sums of
        # squares lose digits.  The exact F here is 1.0 by scale
        # invariance (compare the same shape at order 1.0).
        tiny = one_way_anova([0.0, 0.0, 0.0], [0.0, 0.0, 0.0],
                             [0.0, 0.0, 8.191640124626124e-160])
        unit = one_way_anova([0.0, 0.0, 0.0], [0.0, 0.0, 0.0],
                             [0.0, 0.0, 1.0])
        assert tiny.f_value == pytest.approx(1.0, rel=1e-12)
        assert tiny.f_value == pytest.approx(unit.f_value, rel=1e-12)
        assert tiny.p_value == pytest.approx(unit.p_value, abs=1e-12)

    def test_identical_groups_not_significant(self):
        group = [1.0, 2.0, 3.0, 4.0]
        result = one_way_anova(group, group, group)
        assert result.f_value == pytest.approx(0.0)
        assert not result.significant

    def test_clearly_different_groups_significant(self):
        result = one_way_anova([0.0] * 10 + [0.1], [5.0] * 10 + [5.1])
        assert result.significant

    def test_degrees_of_freedom(self):
        result = one_way_anova([1, 2, 3], [4, 5, 6], [7, 8, 9])
        assert result.df_between == 2
        assert result.df_within == 6

    def test_string_rendering(self):
        result = one_way_anova([0.0, 0.1, 0.2], [5.0, 5.1, 5.2])
        assert "F(1,4)" in str(result)

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            one_way_anova([1.0, 2.0])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            one_way_anova([1.0], [])


class TestPearson:
    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(
            float(scipy_stats.pearsonr(x, y).statistic)
        )

    def test_perfect_correlations(self):
        x = [1.0, 2.0, 3.0]
        assert pearson_correlation(x, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert pearson_correlation(x, [3.0, 2.0, 1.0]) == pytest.approx(-1.0)

    def test_constant_sample_raises(self):
        with pytest.raises(ZeroDivisionError):
            pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])

    @given(xs=st.lists(st.floats(-10, 10), min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, xs):
        ys = [x * 0.3 + i * 0.01 for i, x in enumerate(xs)]
        try:
            value = pearson_correlation(xs, ys)
        except ZeroDivisionError:
            return
        assert -1.0 <= value <= 1.0


class TestSampleSize:
    def test_paper_parameters_give_1062(self):
        assert required_sample_size(200_000, margin_of_error=0.03,
                                    confidence=0.95, proportion=0.5) == 1062

    def test_larger_margin_needs_fewer(self):
        assert required_sample_size(200_000, margin_of_error=0.05) < \
            required_sample_size(200_000, margin_of_error=0.03)

    def test_small_population_caps_sample(self):
        assert required_sample_size(100) <= 100

    def test_unknown_confidence_raises(self):
        with pytest.raises(ValueError, match="unsupported confidence"):
            z_score(0.931)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0)
        with pytest.raises(ValueError):
            required_sample_size(1000, margin_of_error=0.0)
        with pytest.raises(ValueError):
            required_sample_size(1000, proportion=1.0)
