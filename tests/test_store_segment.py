"""Tests for the binary segment format (``repro.store.segment``), the
salvage-what-passes repairer (``repro.store.repair``) and the lifecycle
CLI (``python -m repro.store``).

The format contract:

1. **Round trip + zero copies.**  Arrays come back as read-only views
   onto the mapping (no private bytes), JSON blobs byte-exactly.
2. **Determinism.**  Equal inputs produce byte-equal files -- the
   property behind race-free concurrent publication and byte-exact
   repair.
3. **Structure safety.**  Truncation, bad magic, header/table/directory
   corruption all raise :class:`SegmentError` from ``open`` before any
   data page is trusted.
4. **Precise damage.**  ``verify`` names exactly the flipped page, and
   the page names exactly one region -- which is what lets ``repair``
   keep everything else.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.core.query import DEFAULT_QUERY
from repro.profiles.generator import GroupGenerator
from repro.service.registry import CityRegistry
from repro.store import (AssetStore, CityAssets, FORMAT_VERSION,
                         repair_entry, repair_store)
from repro.store.assets import _MANIFEST, _SEGMENT
from repro.store.segment import (
    DEFAULT_PAGE_SIZE,
    MAGIC,
    Segment,
    SegmentError,
    write_segment,
)
from repro.store.__main__ import main as store_cli

FAST = dict(seed=5, scale=0.15, lda_iterations=5)

#: A representative payload: two JSON blobs (meta-ish and dataset-ish)
#: plus arrays spanning dtypes, shapes, multiple pages and the empty
#: edge case.
BLOBS = {
    "meta": json.dumps({"k": 1}, sort_keys=True).encode(),
    "dataset": (b'{"pois": [' + b"1," * 2000 + b"2]}"),
}


def _arrays():
    rng = np.random.default_rng(7)
    return {
        "arrays/xy": rng.normal(size=(700, 2)),
        "arrays/ids": np.arange(700, dtype=np.int64),
        "index/counts": rng.integers(0, 50, size=(40, 17)).astype(np.int32),
        "index/empty": np.empty((0, 4)),
        "small": np.array([1.5]),
    }


@pytest.fixture()
def segment_path(tmp_path):
    path = tmp_path / "segment.bin"
    write_segment(path, json_blobs=dict(BLOBS), arrays=_arrays())
    return path


@pytest.fixture(scope="module")
def fast_fit():
    registry = CityRegistry(**FAST)
    return registry.entry("paris")


@pytest.fixture()
def saved(tmp_path, fast_fit):
    """A store with one published paris entry; returns (store, entry)."""
    store = AssetStore(tmp_path / "assets")
    entry = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                  fast_fit.arrays), city="paris", **FAST)
    return store, entry


def _flip(path, offset):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


def _package_bytes(package) -> list:
    return [
        ([p.id for p in ci.pois], tuple(float.hex(c) for c in ci.centroid))
        for ci in package.composite_items
    ]


class TestRoundTrip:
    def test_json_and_arrays_round_trip(self, segment_path):
        segment = Segment.open(segment_path)
        for name, blob in BLOBS.items():
            assert segment.json_bytes(name) == blob
        for name, array in _arrays().items():
            got = segment.array(name)
            assert got.dtype == array.dtype and got.shape == array.shape
            assert np.array_equal(got, array)

    def test_arrays_are_read_only_zero_copy_views(self, segment_path):
        segment = Segment.open(segment_path)
        view = segment.array("arrays/xy")
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 9.0
        # A view, not a copy: it borrows the mapping through its base.
        assert view.base is not None
        assert not view.flags.owndata

    def test_views_outlive_the_segment_object(self, segment_path):
        view = Segment.open(segment_path).array("arrays/xy")
        expected = _arrays()["arrays/xy"]
        assert np.array_equal(view, expected)  # mapping kept alive by base

    def test_empty_array_region(self, segment_path):
        got = Segment.open(segment_path).array("index/empty")
        assert got.shape == (0, 4)

    def test_arrays_with_prefix_strips_the_prefix(self, segment_path):
        segment = Segment.open(segment_path)
        sub = segment.arrays_with_prefix("arrays/")
        assert set(sub) == {"xy", "ids"}
        assert np.array_equal(sub["ids"], _arrays()["arrays/ids"])

    def test_describe_is_json_ready(self, segment_path):
        description = Segment.open(segment_path).describe()
        json.dumps(description)
        assert description["page_size"] == DEFAULT_PAGE_SIZE
        assert [r["name"] for r in description["regions"]][:2] \
            == ["meta", "dataset"]


class TestDeterminismAndLayout:
    def test_equal_inputs_produce_byte_equal_files(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        write_segment(a, json_blobs=dict(BLOBS), arrays=_arrays())
        write_segment(b, json_blobs=dict(BLOBS), arrays=_arrays())
        assert a.read_bytes() == b.read_bytes()

    def test_regions_are_page_aligned_and_tile(self, segment_path):
        segment = Segment.open(segment_path)
        regions = sorted(segment.regions.values(), key=lambda r: r.offset)
        next_page = 0
        for region in regions:
            first, count = region.pages
            assert region.offset % segment.page_size == 0
            assert region.offset == segment.page_size * (1 + first)
            assert first == next_page  # no page shared by two regions
            assert region.nbytes <= count * segment.page_size
            next_page = first + count
        assert next_page == segment.n_pages

    def test_object_dtype_is_rejected(self, tmp_path):
        with pytest.raises(SegmentError, match="object dtypes"):
            write_segment(tmp_path / "bad.bin", json_blobs={},
                          arrays={"x": np.array([{"a": 1}], dtype=object)})

    def test_non_contiguous_input_round_trips(self, tmp_path):
        strided = np.arange(100, dtype=float).reshape(10, 10)[::2, ::3]
        path = write_segment(tmp_path / "s.bin", json_blobs={},
                             arrays={"x": strided})
        assert np.array_equal(Segment.open(path).array("x"), strided)


class TestStructureSafety:
    def test_truncation_raises(self, segment_path):
        blob = segment_path.read_bytes()
        for cut in (0, 10, 63, len(blob) // 2, len(blob) - 1):
            segment_path.write_bytes(blob[:cut])
            with pytest.raises(SegmentError):
                Segment.open(segment_path)

    def test_appended_garbage_raises(self, segment_path):
        segment_path.write_bytes(segment_path.read_bytes() + b"\x00")
        with pytest.raises(SegmentError, match="bytes"):
            Segment.open(segment_path)

    def test_bad_magic_raises(self, segment_path):
        _flip(segment_path, 0)
        with pytest.raises(SegmentError, match="magic"):
            Segment.open(segment_path)

    def test_header_corruption_raises(self, segment_path):
        _flip(segment_path, 20)  # inside the offsets, before the crc
        with pytest.raises(SegmentError):
            Segment.open(segment_path)

    def test_version_skew_raises(self, segment_path):
        with pytest.raises(SegmentError, match="version"):
            Segment.open(segment_path, expect_version=99)

    def test_checksum_table_corruption_raises(self, segment_path):
        segment = Segment.open(segment_path)
        sums_offset = segment.page_size * (1 + segment.n_pages)
        _flip(segment_path, sums_offset + 2)
        with pytest.raises(SegmentError, match="checksum-table"):
            Segment.open(segment_path)

    def test_directory_corruption_raises(self, segment_path):
        _flip(segment_path, segment_path.stat().st_size - 3)
        with pytest.raises(SegmentError, match="directory"):
            Segment.open(segment_path)

    def test_data_flip_raises_on_verified_open_only(self, segment_path):
        segment = Segment.open(segment_path)
        offset = segment.regions["arrays/xy"].offset
        _flip(segment_path, offset + 5)
        with pytest.raises(SegmentError, match="corrupt page"):
            Segment.open(segment_path, verify_pages=True)
        Segment.open(segment_path, verify_pages=False)  # structure intact


class TestPreciseDamage:
    def test_verify_names_exactly_the_flipped_page(self, segment_path):
        segment = Segment.open(segment_path)
        region = segment.regions["arrays/xy"]
        hit_page = region.pages[0] + 1  # second page of a >1-page region
        assert region.pages[1] > 1
        _flip(segment_path, segment.page_size * (1 + hit_page) + 7)

        reopened = Segment.open(segment_path, verify_pages=False)
        assert reopened.verify() == [hit_page]
        assert reopened.damaged_regions([hit_page]) == ["arrays/xy"]
        # Every other region still reads clean.
        for name, blob in BLOBS.items():
            assert reopened.json_bytes(name) == blob
        assert np.array_equal(reopened.array("arrays/ids"),
                              _arrays()["arrays/ids"])

    def test_two_flips_two_pages(self, segment_path):
        segment = Segment.open(segment_path)
        a = segment.regions["dataset"]
        b = segment.regions["index/counts"]
        _flip(segment_path, a.offset + 1)
        _flip(segment_path, b.offset + 1)
        reopened = Segment.open(segment_path, verify_pages=False)
        bad = reopened.verify()
        assert len(bad) == 2
        assert reopened.damaged_regions(bad) == ["dataset", "index/counts"]


class TestRepair:
    def _segment(self, entry):
        return Segment.open(entry / _SEGMENT, verify_pages=False)

    def test_clean_entry_is_ok(self, saved):
        store, entry = saved
        report = repair_entry(store, entry.name)
        assert report.status == "ok"
        assert report.damaged_pages == 0 and report.refitted == ()

    def test_arrays_damage_salvages_dataset_and_index(self, saved):
        store, entry = saved
        pristine = (entry / _SEGMENT).read_bytes()
        region = next(r for r in self._segment(entry).regions.values()
                      if r.name.startswith("arrays/") and r.nbytes >= 16)
        _flip(entry / _SEGMENT, region.offset + 3)

        dry = repair_entry(store, entry.name, dry_run=True)
        assert dry.status == "repairable"
        assert (entry / _SEGMENT).read_bytes() != pristine  # untouched

        report = repair_entry(store, entry.name)
        assert report.status == "repaired"
        assert set(report.salvaged) == {"dataset", "index"}
        assert report.refitted == ("arrays",)
        assert (entry / _SEGMENT).read_bytes() == pristine
        assert store.load("paris", **FAST) is not None
        assert store.stats()["repairs"] == 1

    def test_dataset_damage_regenerates_a_template_city(self, saved):
        store, entry = saved
        pristine = (entry / _SEGMENT).read_bytes()
        region = self._segment(entry).regions["dataset"]
        _flip(entry / _SEGMENT, region.offset + 3)
        report = repair_entry(store, entry.name)
        assert report.status == "repaired"
        assert report.refitted == ("dataset",)
        assert set(report.salvaged) == {"index", "arrays"}
        assert (entry / _SEGMENT).read_bytes() == pristine

    def test_dataset_damage_on_a_custom_city_is_unrecoverable(
            self, tmp_path, fast_fit):
        # The key says "nosuchcity": generate_city cannot rebuild it,
        # and the dataset region is the only copy.
        store = AssetStore(tmp_path / "assets")
        entry = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                      fast_fit.arrays),
                           city="nosuchcity", **FAST)
        region = self._segment(entry).regions["dataset"]
        _flip(entry / _SEGMENT, region.offset + 3)
        report = repair_entry(store, entry.name)
        assert report.status == "unrecoverable"
        assert "dataset" in report.refitted

    def test_destroyed_manifest_recovers_key_from_meta_echo(self, saved):
        store, entry = saved
        (entry / _MANIFEST).write_text("{not json")
        assert store.load("paris", **FAST) is None
        report = repair_entry(store, entry.name)
        assert report.status == "repaired"
        assert report.city == "paris"
        assert store.load("paris", **FAST) is not None

    def test_destroyed_segment_with_no_key_is_unrecoverable(self, saved):
        store, entry = saved
        (entry / _SEGMENT).write_bytes(b"garbage")
        (entry / _MANIFEST).unlink()
        report = repair_entry(store, entry.name)
        assert report.status == "unrecoverable"

    def test_repaired_entry_builds_identical_packages(self, saved, fast_fit):
        store, entry = saved
        region = next(r for r in self._segment(entry).regions.values()
                      if r.name.startswith("index/") and r.nbytes >= 16)
        _flip(entry / _SEGMENT, region.offset + 3)
        assert repair_entry(store, entry.name).status == "repaired"
        loaded = store.load("paris", **FAST)
        from repro.core.kfc import KFCBuilder
        profile = GroupGenerator(fast_fit.schema,
                                 seed=3).uniform_group(4).profile()
        hydrated = KFCBuilder(loaded.dataset, loaded.item_index,
                              seed=FAST["seed"], arrays=loaded.arrays)
        assert _package_bytes(hydrated.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(fast_fit.builder.build(profile, DEFAULT_QUERY))

    def test_repair_store_walks_every_entry(self, saved, fast_fit):
        store, entry = saved
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="rome", **FAST)
        reports = repair_store(store)
        assert len(reports) == 2
        assert all(r.status == "ok" for r in reports)
        assert json.dumps([r.to_dict() for r in reports])  # JSON-ready


class TestCLI:
    def _run(self, capsys, *argv):
        code = store_cli(list(argv))
        return code, capsys.readouterr().out

    def test_ls_and_inspect(self, saved, capsys):
        store, entry = saved
        code, out = self._run(capsys, "--root", str(store.root), "ls")
        assert code == 0 and entry.name in out and "ok" in out

        code, out = self._run(capsys, "--root", str(store.root), "--json",
                              "inspect", entry.name)
        assert code == 0
        payload = json.loads(out)
        assert payload["damaged_pages"] == []
        assert payload["segment"]["format_version"] == FORMAT_VERSION

    def test_verify_clean_and_damaged(self, saved, capsys):
        store, entry = saved
        code, out = self._run(capsys, "--root", str(store.root), "verify")
        assert code == 0 and "all valid" in out
        code, _ = self._run(capsys, "--root", str(store.root), "verify",
                            "--deep")
        assert code == 0

        segment = Segment.open(entry / _SEGMENT, verify_pages=False)
        region = next(r for r in segment.regions.values()
                      if r.name.startswith("arrays/") and r.nbytes >= 16)
        _flip(entry / _SEGMENT, region.offset + 3)
        code, out = self._run(capsys, "--root", str(store.root), "verify")
        assert code == 1 and "FAIL" in out and "corrupt page" in out

    def test_repair_round_trips_through_the_cli(self, saved, capsys):
        store, entry = saved
        pristine = (entry / _SEGMENT).read_bytes()
        segment = Segment.open(entry / _SEGMENT, verify_pages=False)
        region = next(r for r in segment.regions.values()
                      if r.name.startswith("arrays/") and r.nbytes >= 16)
        _flip(entry / _SEGMENT, region.offset + 3)

        code, out = self._run(capsys, "--root", str(store.root), "--json",
                              "repair", "--dry-run")
        assert code == 0
        assert json.loads(out)[0]["status"] == "repairable"

        code, out = self._run(capsys, "--root", str(store.root), "repair")
        assert code == 0 and "repaired" in out
        assert (entry / _SEGMENT).read_bytes() == pristine

    def test_prune_dry_run_reports_without_removing(self, saved, capsys):
        store, entry = saved
        stale = store.root / "old-seed1-scale0.5-lda5-cafe0000-v1"
        stale.mkdir()
        code, out = self._run(capsys, "--root", str(store.root), "--json",
                              "prune", "--dry-run")
        assert code == 0
        report = json.loads(out)
        assert report["stale_version"] == [stale.name] and stale.exists()
        assert report["kept"] == 1

    def test_missing_root_and_entry_exit_2(self, tmp_path, saved, capsys):
        store, _ = saved
        assert store_cli(["--root", str(tmp_path / "nope"), "ls"]) == 2
        code, _ = self._run(capsys, "--root", str(store.root),
                            "inspect", "no-such-entry")
        assert code == 2
