"""Tests for the uniform spatial grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import equirectangular_km
from repro.geo.grid import SpatialGrid
from repro.geo.rectangle import Rectangle


def _brute_force_nearest(points, lat, lon, k):
    scored = sorted(
        (float(equirectangular_km(lat, lon, plat, plon)), key)
        for key, plat, plon in points
    )
    return [key for _, key in scored[:k]]


class TestBasics:
    def test_insert_and_len(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(2, 48.86, 2.36)
        assert len(grid) == 2
        assert 1 in grid and 3 not in grid

    def test_location_roundtrip(self):
        grid = SpatialGrid()
        grid.insert(5, 48.85, 2.35)
        assert grid.location(5) == (48.85, 2.35)

    def test_reinsert_moves_point(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(1, 48.95, 2.45)
        assert len(grid) == 1
        assert grid.location(1) == (48.95, 2.45)

    def test_remove(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.remove(1)
        assert len(grid) == 0
        with pytest.raises(KeyError):
            grid.remove(1)

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            SpatialGrid(cell_km=0)


class TestNearest:
    def test_empty_grid(self):
        assert SpatialGrid().nearest(48.85, 2.35, k=3) == []

    def test_k_zero(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        assert grid.nearest(48.85, 2.35, k=0) == []

    def test_single_point(self):
        grid = SpatialGrid()
        grid.insert(7, 48.85, 2.35)
        assert grid.nearest(48.9, 2.4, k=1) == [7]

    def test_predicate_filter(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(2, 48.8501, 2.3501)
        assert grid.nearest(48.85, 2.35, k=1, predicate=lambda key: key == 2) == [2]

    def test_max_radius(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(2, 48.95, 2.35)  # ~11 km away
        found = grid.nearest(48.85, 2.35, k=5, max_radius_km=5.0)
        assert found == [1]

    @given(seed=st.integers(0, 200), k=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed, k):
        rng = np.random.default_rng(seed)
        points = [
            (i, float(rng.uniform(48.80, 48.92)), float(rng.uniform(2.25, 2.45)))
            for i in range(40)
        ]
        grid = SpatialGrid.from_points(points)
        lat = float(rng.uniform(48.80, 48.92))
        lon = float(rng.uniform(2.25, 2.45))
        expected = _brute_force_nearest(points, lat, lon, k)
        assert grid.nearest(lat, lon, k=k) == expected


class TestRectangleQuery:
    def test_within_rectangle(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(2, 48.99, 2.99)
        rect = Rectangle(lat=48.90, lon=2.30, width=0.2, height=0.2)
        assert grid.within_rectangle(rect) == [1]

    def test_within_rectangle_predicate(self):
        grid = SpatialGrid()
        grid.insert(1, 48.85, 2.35)
        grid.insert(2, 48.86, 2.36)
        rect = Rectangle(lat=48.90, lon=2.30, width=0.2, height=0.2)
        assert grid.within_rectangle(rect, predicate=lambda key: key > 1) == [2]
