"""Tests for user profiles and the profile schema."""

import numpy as np
import pytest

from repro.data.poi import CATEGORIES, Category
from repro.profiles.schema import ProfileSchema
from repro.profiles.user import UserProfile


@pytest.fixture()
def simple_schema():
    return ProfileSchema.with_topic_counts(4, 4)


def _ratings(schema, value=2.5):
    return {cat: np.full(schema.size(cat), value) for cat in CATEGORIES}


class TestSchema:
    def test_default_schema_dimensions(self):
        schema = ProfileSchema.default()
        assert schema.size("acco") == 6
        assert schema.size("trans") == 7
        assert schema.size("rest") == 8
        assert schema.size("attr") == 8
        assert schema.total_size() == 29

    def test_missing_category_rejected(self):
        with pytest.raises(ValueError, match="missing categories"):
            ProfileSchema(dimensions={Category.ACCOMMODATION: ("hotel",)})

    def test_empty_dimension_rejected(self):
        dims = {cat: ("x",) for cat in CATEGORIES}
        dims[Category.RESTAURANT] = ()
        with pytest.raises(ValueError, match="no dimensions"):
            ProfileSchema(dimensions=dims)

    def test_labels(self, simple_schema):
        assert simple_schema.labels("rest") == tuple(
            f"rest-topic-{i}" for i in range(4)
        )


class TestUserProfile:
    def test_from_ratings_normalizes_per_category(self, simple_schema):
        profile = UserProfile.from_ratings(simple_schema, _ratings(simple_schema))
        for cat in CATEGORIES:
            vec = profile.vector(cat)
            assert vec.sum() == pytest.approx(1.0)
            assert np.allclose(vec, vec[0])  # uniform ratings -> uniform scores

    def test_paper_normalization_formula(self, simple_schema):
        ratings = _ratings(simple_schema)
        ratings[Category.ACCOMMODATION] = np.array([5.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        profile = UserProfile.from_ratings(simple_schema, ratings)
        assert profile.vector("acco")[0] == pytest.approx(1.0)

    def test_zero_ratings_stay_zero(self, simple_schema):
        ratings = _ratings(simple_schema)
        ratings[Category.RESTAURANT] = np.zeros(4)
        profile = UserProfile.from_ratings(simple_schema, ratings)
        assert np.allclose(profile.vector("rest"), 0.0)

    def test_rejects_out_of_range_ratings(self, simple_schema):
        ratings = _ratings(simple_schema)
        ratings[Category.RESTAURANT] = np.array([6.0, 0, 0, 0])
        with pytest.raises(ValueError, match=r"\[0, 5\]"):
            UserProfile.from_ratings(simple_schema, ratings)

    def test_rejects_wrong_shape(self, simple_schema):
        vectors = {cat: np.zeros(simple_schema.size(cat)) for cat in CATEGORIES}
        vectors[Category.ATTRACTION] = np.zeros(2)
        with pytest.raises(ValueError, match="shape"):
            UserProfile(simple_schema, vectors)

    def test_rejects_scores_above_one(self, simple_schema):
        vectors = {cat: np.zeros(simple_schema.size(cat)) for cat in CATEGORIES}
        vectors[Category.ATTRACTION] = np.full(4, 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            UserProfile(simple_schema, vectors)

    def test_vector_returns_copy(self, simple_schema):
        profile = UserProfile.from_ratings(simple_schema, _ratings(simple_schema))
        vec = profile.vector("acco")
        vec[:] = 0.0
        assert profile.vector("acco").sum() == pytest.approx(1.0)

    def test_concatenated_order(self, simple_schema):
        profile = UserProfile.from_ratings(simple_schema, _ratings(simple_schema))
        concat = profile.concatenated()
        assert concat.shape == (simple_schema.total_size(),)
        assert np.allclose(concat[:simple_schema.size("acco")],
                           profile.vector("acco"))

    def test_replace_returns_new_profile(self, simple_schema):
        profile = UserProfile.from_ratings(simple_schema, _ratings(simple_schema))
        new = profile.replace("rest", np.zeros(4))
        assert np.allclose(new.vector("rest"), 0.0)
        assert profile.vector("rest").sum() > 0.0
