"""Property-based tests on the core KFC invariants.

Whatever the query, seed or consensus method, a built package must be
valid, its CIs anchored inside the city, and the budget respected --
the contract downstream users rely on.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.assembly import InfeasibleQueryError
from repro.core.query import GroupQuery
from repro.profiles.consensus import ConsensusMethod

# Draw raw counts first and only construct the (validating) GroupQuery
# once at least one POI is requested.
queries = st.tuples(
    st.integers(0, 2), st.integers(0, 2), st.integers(0, 3),
    st.integers(0, 4),
    st.one_of(st.just(math.inf), st.floats(18.0, 60.0)),
).filter(lambda t: t[0] + t[1] + t[2] + t[3] > 0).map(
    lambda t: GroupQuery.of(acco=t[0], trans=t[1], rest=t[2], attr=t[3],
                            budget=t[4])
)


class TestKFCInvariants:
    @given(query=queries,
           method=st.sampled_from(list(ConsensusMethod)),
           k=st.integers(1, 6))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_built_packages_always_valid(self, app, uniform_group,
                                         query, method, k):
        profile = uniform_group.profile(method)
        try:
            package = app.kfc.build(profile, query, k=k)
        except InfeasibleQueryError:
            # Legitimate for tight budgets; nothing more to check.
            return
        assert package.k == k
        assert package.is_valid(query)
        for ci in package:
            assert len(ci) == query.total_items()
            assert ci.total_cost() <= query.budget
            # No duplicate POIs inside one CI (a CI is a set).
            assert len(ci.poi_ids) == len(ci.pois)

    @given(query=queries)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_centroids_anchor_inside_city(self, app, uniform_group, query):
        profile = uniform_group.profile()
        try:
            package = app.kfc.build(profile, query)
        except InfeasibleQueryError:
            return
        coords = app.dataset.coordinates()
        lat_lo, lon_lo = coords.min(axis=0)
        lat_hi, lon_hi = coords.max(axis=0)
        margin = 0.02
        for ci in package:
            assert lat_lo - margin <= ci.centroid[0] <= lat_hi + margin
            assert lon_lo - margin <= ci.centroid[1] <= lon_hi + margin

    @given(seed=st.integers(0, 5))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_same_seed_same_package(self, app, uniform_group,
                                    default_query, seed):
        profile = uniform_group.profile()
        a = app.kfc.build(profile, default_query, seed=seed)
        b = app.kfc.build(profile, default_query, seed=seed)
        assert [ci.poi_ids for ci in a] == [ci.poi_ids for ci in b]


class TestRecenterEmptyCI:
    """Regression: _recenter used to crash on an empty Composite Item.

    Whole-CI deletion in a customization session leaves an empty CI
    (explicit centroid, no POIs); np.array([]) is 1-D, so the projection
    raised IndexError on ``[:, 1]``.
    """

    def test_recenter_survives_empty_ci(self, app, uniform_group,
                                        default_query):
        from repro.core.composite import CompositeItem

        profile = uniform_group.profile()
        package = app.kfc.build(profile, default_query)
        centroids = package.centroids()
        cis = list(package.composite_items)
        cis[0] = CompositeItem([], centroid=cis[0].centroid)

        moved = app.kfc._recenter(centroids, cis, app.kfc.weights)

        assert moved.shape == centroids.shape
        assert np.isfinite(moved).all()
        # The empty CI's centroid still moves with its fuzzy members
        # (alpha pull); the non-empty CIs keep their beta pull too.
        for j, ci in enumerate(cis):
            assert np.isfinite(moved[j]).all()
