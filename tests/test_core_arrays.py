"""Tests for the CityArrays compute layer.

Three guarantees matter:

1. the bundle is a faithful columnar view of the dataset + item index
   (alignment, projection, cost order, grid buckets);
2. it survives pickling intact (shard workers receive it across a
   process boundary);
3. building against it is **byte-identical** to the object path -- the
   golden fixtures in ``tests/data/golden_packages.json`` were captured
   from the pre-refactor implementation and pin package POI ids, per-CI
   ordering, centroids and quality metrics bit-for-bit (``float.hex``)
   across 3 cities x 3 seeds plus one budgeted (repair-path) build per
   city.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.core.arrays import CityArrays, project_coords
from repro.core.assembly import InfeasibleQueryError, assemble_composite_item
from repro.core.baselines import random_package
from repro.core.builder import GroupTravel
from repro.core.kfc import KFCBuilder
from repro.core.objective import (
    evaluate_objective,
    normalized_distances_to_centroids,
)
from repro.core.query import DEFAULT_QUERY, GroupQuery
from repro.data.dataset import POIDataset
from repro.data.poi import CATEGORIES, Category
from repro.data.synthetic import generate_city
from repro.profiles.generator import GroupGenerator
from repro.profiles.vectors import ItemVectorIndex

from conftest import make_poi

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_packages.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="session")
def arrays(app):
    return app.arrays


@pytest.fixture()
def profile(uniform_group):
    return uniform_group.profile()


@pytest.fixture()
def center(small_city):
    lat, lon = small_city.coordinates().mean(axis=0)
    return (float(lat), float(lon))


class TestBundle:
    def test_row_alignment(self, app, arrays):
        dataset = app.dataset
        assert len(arrays) == len(dataset)
        assert list(arrays.ids) == list(dataset.ids)
        for cat in CATEGORIES:
            pois = dataset.by_category(cat)
            ca = arrays.categories[cat]
            assert list(ca.ids) == [p.id for p in pois]
            assert ca.vectors.shape == (len(pois), app.schema.size(cat))
            for row, poi in enumerate(pois):
                assert ca.lats[row] == poi.lat
                assert ca.costs[row] == poi.cost
                assert np.array_equal(ca.vectors[row],
                                      app.item_index.vector(poi))
                # rows index back into the city-wide columns
                assert arrays.ids[ca.rows[row]] == poi.id

    def test_projection_matches_builder(self, app, arrays):
        xy, origin = project_coords(app.dataset.coordinates())
        assert arrays.origin == origin == app.kfc._origin
        assert np.array_equal(arrays.xy, xy)

    def test_max_distance_is_the_papers_normalizer(self, app, arrays):
        assert arrays.max_distance_km == app.dataset.max_distance_km

    def test_cost_order(self, arrays):
        for ca in arrays.categories.values():
            keyed = [(ca.costs[r], ca.ids[r]) for r in ca.cost_order]
            assert keyed == sorted(keyed)

    def test_vector_norms(self, arrays):
        for ca in arrays.categories.values():
            if len(ca):
                assert np.array_equal(ca.vector_norms,
                                      np.linalg.norm(ca.vectors, axis=1))

    def test_pooled_per_dataset_index_pair(self, app, arrays):
        assert CityArrays.of(app.dataset, app.item_index) is arrays

    def test_cell_buckets_match_spatial_grid(self, app, arrays):
        grid = app.dataset.grid
        rows_seen = []
        for cell, rows in arrays.cell_buckets.items():
            rows_seen.extend(int(r) for r in rows)
            for r in rows:
                lat, lon = arrays.lats[r], arrays.lons[r]
                assert grid._cell_of(float(lat), float(lon)) == cell
        assert sorted(rows_seen) == list(range(len(arrays)))

    def test_rows_near_contains_nearest(self, app, arrays, center):
        nearest = app.dataset.nearest(center[0], center[1], k=1)[0]
        rows = arrays.rows_near(center[0], center[1], rings=2)
        assert arrays.row_of[nearest.id] in set(int(r) for r in rows)

    def test_rows_for_unknown_id_raises(self, arrays):
        with pytest.raises(KeyError):
            arrays.rows_for([10**9])


class TestPickle:
    def test_round_trip_preserves_every_array(self, arrays):
        clone = pickle.loads(pickle.dumps(arrays))
        assert clone.city == arrays.city
        assert clone.origin == arrays.origin
        assert clone.max_distance_km == arrays.max_distance_km
        assert np.array_equal(clone.ids, arrays.ids)
        assert np.array_equal(clone.xy, arrays.xy)
        assert clone.row_of == arrays.row_of
        assert set(clone.cell_buckets) == set(arrays.cell_buckets)
        for cell, rows in arrays.cell_buckets.items():
            assert np.array_equal(clone.cell_buckets[cell], rows)
        for cat in CATEGORIES:
            ca, cb = arrays.categories[cat], clone.categories[cat]
            for field in ("ids", "rows", "lats", "lons", "costs",
                          "vectors", "vector_norms", "cost_order",
                          "cell_cells", "cell_start", "cell_rows",
                          "cell_bounds"):
                assert np.array_equal(getattr(ca, field), getattr(cb, field))

    def test_unpickled_bundle_builds_identical_packages(self, app, profile):
        """What a shard worker receives must serve the same bytes."""
        clone = pickle.loads(pickle.dumps(app.arrays))
        builder = KFCBuilder(app.dataset, app.item_index, seed=7,
                             arrays=clone)
        a = app.kfc.build(profile, DEFAULT_QUERY)
        b = builder.build(profile, DEFAULT_QUERY)
        assert ([[p.id for p in ci.pois] for ci in a.composite_items]
                == [[p.id for p in ci.pois] for ci in b.composite_items])


class TestEquivalence:
    """Array path vs object path: identical results, not just close."""

    def test_assembly_identical(self, app, arrays, profile, center,
                                default_query):
        with_arrays = assemble_composite_item(
            app.dataset, center, default_query, profile, app.item_index,
            arrays=arrays)
        without = assemble_composite_item(
            app.dataset, center, default_query, profile, app.item_index)
        assert [p.id for p in with_arrays.pois] == [p.id for p in without.pois]
        assert with_arrays.centroid == without.centroid

    def test_assembly_identical_under_budget(self, app, arrays, profile,
                                             center):
        query = GroupQuery.of(acco=1, trans=1, rest=1, attr=3, budget=15.0)
        with_arrays = assemble_composite_item(
            app.dataset, center, query, profile, app.item_index,
            arrays=arrays)
        without = assemble_composite_item(
            app.dataset, center, query, profile, app.item_index)
        assert [p.id for p in with_arrays.pois] == [p.id for p in without.pois]
        assert with_arrays.is_valid(query)

    def test_assembly_identical_across_centroids(self, app, arrays, profile,
                                                 default_query, small_city):
        coords = small_city.coordinates()
        rng = np.random.default_rng(5)
        for _ in range(5):
            lat = float(rng.uniform(coords[:, 0].min(), coords[:, 0].max()))
            lon = float(rng.uniform(coords[:, 1].min(), coords[:, 1].max()))
            a = assemble_composite_item(app.dataset, (lat, lon),
                                        default_query, profile,
                                        app.item_index, arrays=arrays)
            b = assemble_composite_item(app.dataset, (lat, lon),
                                        default_query, profile,
                                        app.item_index)
            assert [p.id for p in a.pois] == [p.id for p in b.pois]

    def test_kfc_build_identical(self, app, profile, default_query):
        legacy = KFCBuilder(app.dataset, app.item_index, seed=7,
                            use_arrays=False)
        assert legacy.arrays is None
        a = app.kfc.build(profile, default_query)
        b = legacy.build(profile, default_query)
        assert ([[p.id for p in ci.pois] for ci in a.composite_items]
                == [[p.id for p in ci.pois] for ci in b.composite_items])
        assert [ci.centroid for ci in a.composite_items] \
            == [ci.centroid for ci in b.composite_items]

    def test_random_package_identical(self, app, arrays, default_query):
        a = random_package(app.dataset, default_query, seed=3, arrays=arrays)
        b = random_package(app.dataset, default_query, seed=3)
        assert ([[p.id for p in ci.pois] for ci in a.composite_items]
                == [[p.id for p in ci.pois] for ci in b.composite_items])

    def test_objective_identical(self, app, arrays, profile, default_query):
        package = app.kfc.build(profile, default_query)
        with_arrays = evaluate_objective(app.dataset, package, profile,
                                         app.item_index, arrays=arrays)
        without = evaluate_objective(app.dataset, package, profile,
                                     app.item_index)
        assert with_arrays == without

    def test_normalized_distances_identical(self, app, arrays):
        centroids = app.kfc.place_centroids()
        a = normalized_distances_to_centroids(app.dataset, centroids,
                                              arrays=arrays)
        b = normalized_distances_to_centroids(app.dataset, centroids)
        assert np.array_equal(a, b)


class TestGoldenDeterminism:
    """Refactored builds must be byte-identical to the pre-refactor
    implementation: POI ids, per-CI ordering, centroids and quality
    metrics, across 3 cities x 3 seeds plus a budgeted build each."""

    @pytest.fixture(scope="class")
    def systems(self, golden):
        cfg = golden["config"]
        out = {}
        for city in {b["city"] for b in golden["builds"]}:
            dataset = generate_city(city, seed=cfg["city_seed"],
                                    scale=cfg["scale"])
            app = GroupTravel(dataset, seed=cfg["app_seed"],
                              lda_iterations=cfg["lda_iterations"])
            group = GroupGenerator(
                app.schema, seed=cfg["group_seed"]
            ).uniform_group(cfg["group_size"])
            legacy = KFCBuilder(dataset, app.item_index, k=5,
                                seed=cfg["app_seed"], use_arrays=False)
            out[city] = (app, group.profile(), legacy)
        return out

    def _check(self, pkg, profile, item_index, build):
        assert [[p.id for p in ci.pois] for ci in pkg.composite_items] \
            == [ci["poi_ids"] for ci in build["cis"]]
        assert [[float.hex(c) for c in ci.centroid]
                for ci in pkg.composite_items] \
            == [ci["centroid"] for ci in build["cis"]]
        assert {
            "representativity_km": float.hex(pkg.representativity()),
            "within_ci_km": float.hex(pkg.raw_cohesiveness_sum()),
            "personalization": float.hex(
                pkg.personalization(profile, item_index)),
        } == build["metrics"]

    def test_covers_three_cities_three_seeds_and_budgets(self, golden):
        builds = golden["builds"]
        assert len({b["city"] for b in builds}) >= 3
        assert len({b["seed"] for b in builds}) >= 3
        assert sum(1 for b in builds if b["budget"] is not None) >= 3

    def test_array_path_matches_golden(self, golden, systems):
        for build in golden["builds"]:
            app, profile, _ = systems[build["city"]]
            query = (DEFAULT_QUERY if build["budget"] is None else
                     GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                                   budget=build["budget"]))
            pkg = app.kfc.build(profile, query, seed=build["seed"])
            self._check(pkg, profile, app.item_index, build)

    def test_object_path_matches_golden(self, golden, systems):
        for build in golden["builds"]:
            app, profile, legacy = systems[build["city"]]
            query = (DEFAULT_QUERY if build["budget"] is None else
                     GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                                   budget=build["budget"]))
            pkg = legacy.build(profile, query, seed=build["seed"])
            self._check(pkg, profile, app.item_index, build)


class _ExplodingProfile:
    """A profile stand-in that fails the test if any scoring happens."""

    def vector(self, category):
        raise AssertionError(
            "profile.vector() was read before the feasibility guard"
        )


class TestEmptyCategoryGuard:
    """An empty (or undersized) category must raise InfeasibleQueryError
    before any scoring work -- no profile-vector reads, no distance
    passes for categories validated earlier."""

    @pytest.fixture(scope="class")
    def no_trans_dataset(self):
        pois = [make_poi(i, cat=cat, lat=48.85 + i * 1e-3, lon=2.35)
                for i, cat in enumerate(
                    ["acco", "rest", "attr", "attr", "attr", "acco", "rest"])]
        return POIDataset(pois, city="tiny")

    def test_empty_category_raises_before_scoring(self, app,
                                                  no_trans_dataset):
        with pytest.raises(InfeasibleQueryError, match="only 0"):
            assemble_composite_item(
                no_trans_dataset, (48.85, 2.35), DEFAULT_QUERY,
                _ExplodingProfile(), app.item_index)

    def test_empty_category_raises_on_array_path(self, no_trans_dataset):
        index = ItemVectorIndex.fit(no_trans_dataset, lda_iterations=5,
                                    seed=0)
        arrays = CityArrays.build(no_trans_dataset, index)
        assert len(arrays.categories[Category.TRANSPORTATION]) == 0
        with pytest.raises(InfeasibleQueryError, match="only 0"):
            assemble_composite_item(
                no_trans_dataset, (48.85, 2.35), DEFAULT_QUERY,
                _ExplodingProfile(), index, arrays=arrays)

    def test_undersized_category_raises_before_scoring(self, app):
        huge = GroupQuery.of(acco=10_000)
        with pytest.raises(InfeasibleQueryError, match="only"):
            assemble_composite_item(
                app.dataset, (48.85, 2.35), huge, _ExplodingProfile(),
                app.item_index, arrays=app.arrays)


class TestRepairBudget:
    def test_budgeted_builds_identical_and_valid(self, app, profile):
        base = app.kfc.build(profile, DEFAULT_QUERY)
        budget = round(
            0.85 * max(ci.total_cost() for ci in base.composite_items), 2)
        query = GroupQuery.of(acco=1, trans=1, rest=1, attr=3, budget=budget)
        legacy = KFCBuilder(app.dataset, app.item_index, seed=7,
                            use_arrays=False)
        a = app.kfc.build(profile, query)
        b = legacy.build(profile, query)
        assert a.is_valid(query)
        assert all(ci.total_cost() <= budget for ci in a.composite_items)
        assert ([[p.id for p in ci.pois] for ci in a.composite_items]
                == [[p.id for p in ci.pois] for ci in b.composite_items])

    def test_tight_budget_falls_back_to_cheapest_fill(self, app, arrays,
                                                      profile, center):
        """A budget barely above the cheapest conforming CI forces the
        repair loop all the way to the cheapest-fill fallback."""
        query = GroupQuery.of(acco=1, trans=1, rest=1, attr=3)
        pools = {cat: sorted(p.cost for p in app.dataset.by_category(cat))
                 for cat in query.requested_categories()}
        floor = sum(sum(costs[: query.count(cat)])
                    for cat, costs in pools.items())
        tight = GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                              budget=floor * 1.0001)
        ci = assemble_composite_item(app.dataset, center, tight, profile,
                                     app.item_index, arrays=arrays)
        assert ci.is_valid(tight)
        legacy_ci = assemble_composite_item(app.dataset, center, tight,
                                            profile, app.item_index)
        assert [p.id for p in ci.pois] == [p.id for p in legacy_ci.pois]


class TestServiceThreading:
    def test_registry_entry_carries_arrays(self):
        from repro.service.registry import CityRegistry

        registry = CityRegistry(seed=5, scale=0.2, lda_iterations=10)
        entry = registry.entry("paris")
        assert entry.arrays is not None
        assert entry.builder.arrays is entry.arrays
        assert registry.arrays("paris") is entry.arrays
        assert entry.arrays.city == "paris"
        assert len(entry.arrays) == len(entry.dataset)

    def test_sessions_generate_against_the_bundle(self, app, profile,
                                                  default_query):
        from repro.geo.rectangle import Rectangle

        package = app.kfc.build(profile, default_query)
        session = app.customize(package, profile)
        assert session.arrays is app.arrays
        coords = app.dataset.coordinates()
        rect = Rectangle(
            lat=float(coords[:, 0].mean()) + 0.005,
            lon=float(coords[:, 1].mean()) - 0.005,
            width=0.01, height=0.01,
        )
        index = session.generate(rect)
        assert session.package[index].is_valid(default_query)
