"""Tests for fuzzy c-means, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.fuzzy_cmeans import FuzzyCMeans


def _blobs(seed: int, n_per_blob: int = 30):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    points = np.vstack([
        center + rng.normal(0, 0.5, size=(n_per_blob, 2))
        for center in centers
    ])
    return points, centers


class TestValidation:
    def test_bad_cluster_count(self):
        with pytest.raises(ValueError):
            FuzzyCMeans(0)

    def test_fuzzifier_must_exceed_one(self):
        with pytest.raises(ValueError, match="f <= 1"):
            FuzzyCMeans(2, m=1.0)

    def test_requires_enough_points(self):
        with pytest.raises(ValueError, match="at least"):
            FuzzyCMeans(5).fit(np.zeros((3, 2)))

    def test_requires_2d_input(self):
        with pytest.raises(ValueError, match=r"\(n, d\)"):
            FuzzyCMeans(2).fit(np.zeros(10))


class TestClustering:
    def test_memberships_are_a_partition(self):
        points, _ = _blobs(0)
        result = FuzzyCMeans(3, seed=1).fit(points)
        assert result.memberships.shape == (len(points), 3)
        assert np.allclose(result.memberships.sum(axis=1), 1.0)
        assert (result.memberships >= 0).all()

    def test_finds_planted_blobs(self):
        points, centers = _blobs(1)
        result = FuzzyCMeans(3, seed=2).fit(points)
        # Every true center should have a found centroid within 1.0.
        for center in centers:
            nearest = np.linalg.norm(result.centroids - center, axis=1).min()
            assert nearest < 1.0

    def test_hard_assignments_agree_with_blobs(self):
        points, _ = _blobs(2)
        result = FuzzyCMeans(3, seed=3).fit(points)
        hard = result.hard_assignments()
        # Each blob of 30 consecutive points should be essentially pure.
        for blob in range(3):
            labels = hard[blob * 30:(blob + 1) * 30]
            counts = np.bincount(labels, minlength=3)
            assert counts.max() >= 28

    def test_deterministic_given_seed(self):
        points, _ = _blobs(3)
        a = FuzzyCMeans(3, seed=4).fit(points)
        b = FuzzyCMeans(3, seed=4).fit(points)
        assert np.allclose(a.centroids, b.centroids)

    def test_single_cluster_centroid_is_weighted_mean(self):
        points, _ = _blobs(4)
        result = FuzzyCMeans(1, seed=0).fit(points)
        # With one cluster all memberships are 1, so the centroid is the mean.
        assert np.allclose(result.centroids[0], points.mean(axis=0), atol=1e-6)
        assert np.allclose(result.memberships, 1.0)

    def test_point_on_centroid_gets_full_membership(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0], [5.0, 5.0]])
        result = FuzzyCMeans(2, seed=1).fit(points)
        top = result.memberships.max(axis=1)
        assert np.allclose(top, 1.0)

    def test_objective_decreases_with_more_clusters(self):
        points, _ = _blobs(5)
        small = FuzzyCMeans(2, seed=1).fit(points).objective
        large = FuzzyCMeans(4, seed=1).fit(points).objective
        assert large < small


class TestProperties:
    @given(seed=st.integers(0, 50), k=st.integers(1, 4),
           n=st.integers(8, 40))
    @settings(max_examples=40, deadline=None)
    def test_invariants_on_random_data(self, seed, k, n):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-5, 5, size=(n, 2))
        result = FuzzyCMeans(k, seed=seed).fit(points)
        assert result.centroids.shape == (k, 2)
        assert np.allclose(result.memberships.sum(axis=1), 1.0, atol=1e-9)
        assert np.isfinite(result.objective)
        assert result.objective >= 0.0
        # Centroids stay inside the data's bounding box (convexity).
        lo, hi = points.min(axis=0) - 1e-9, points.max(axis=0) + 1e-9
        assert (result.centroids >= lo).all()
        assert (result.centroids <= hi).all()
