"""End-to-end integration tests: the full Figure 2 pipeline."""

import numpy as np
import pytest

from repro.core import GroupQuery, GroupTravel, ObjectiveWeights
from repro.core.baselines import non_personalized_package
from repro.data.synthetic import generate_city
from repro.geo.rectangle import Rectangle
from repro.profiles.consensus import ConsensusMethod
from repro.profiles.vectors import ItemVectorIndex
from repro.study.customization_sim import simulate_group_interactions


class TestFullPipeline:
    """Profiles -> consensus -> KFC -> customization -> refinement."""

    def test_figure2_flow(self, app, uniform_group, default_query):
        # 1. Consensus profile.
        profile = app.group_profile(uniform_group,
                                    ConsensusMethod.PAIRWISE_DISAGREEMENT)
        # 2. Personalized package.
        package = app.build_for_profile(profile, default_query)
        assert package.is_valid(default_query)

        # 3. Customize: one of each operator.
        session = app.customize(package, profile)
        session.remove(0, package[0].pois[0].id, actor=0)
        addition = session.suggest_additions(1, k=1)[0]
        session.add(1, addition, actor=1)
        session.replace(2, package[2].pois[1].id, actor=2)
        center = app.dataset.coordinates().mean(axis=0)
        session.generate(Rectangle.around(float(center[0]), float(center[1]),
                                          0.05, 0.05), actor=3)

        # 4. Refine both ways and rebuild.
        batch_profile = app.refine_profile_batch(profile, session)
        _, individual_profile = app.refine_profile_individual(
            uniform_group, session, ConsensusMethod.PAIRWISE_DISAGREEMENT
        )
        for refined in (batch_profile, individual_profile):
            rebuilt = app.build_for_profile(refined, default_query)
            assert rebuilt.is_valid(default_query)

    def test_all_consensus_methods_build(self, app, non_uniform_group,
                                         default_query):
        for method in ConsensusMethod:
            package = app.build_package(non_uniform_group, default_query,
                                        method)
            assert package.is_valid(default_query)

    def test_every_city_supports_default_query(self):
        from repro.data.cities import city_names

        for city in city_names():
            dataset = generate_city(city, seed=1, scale=0.15)
            app = GroupTravel(dataset, seed=1, lda_iterations=10)
            group = __import__(
                "repro.profiles.generator", fromlist=["GroupGenerator"]
            ).GroupGenerator(app.schema, seed=2).uniform_group(4)
            package = app.build_package(group, GroupQuery.of(
                acco=1, trans=1, rest=1, attr=2
            ))
            assert package.is_valid()

    def test_cross_city_profile_transfer(self, app, uniform_group,
                                         default_query):
        """Refine in Paris, rebuild in Barcelona (Section 4.4.4)."""
        barcelona = generate_city("barcelona", seed=4, scale=0.2)
        transferred = ItemVectorIndex.transfer(barcelona, app.item_index)
        from repro.core.kfc import KFCBuilder

        bcn = KFCBuilder(barcelona, transferred, weights=app.weights, k=5)
        profile = uniform_group.profile()
        package = bcn.build(profile, default_query)
        assert package.is_valid(default_query)
        # Same schema: personalization metric is computable directly.
        assert package.personalization(profile, transferred) > 0.0

    def test_interaction_simulation_produces_signal(self, app, uniform_group,
                                                    default_query):
        profile = uniform_group.profile()
        package = app.build_for_profile(profile, default_query)
        session = app.customize(package, profile)
        simulate_group_interactions(session, uniform_group, seed=5)
        assert len(session.interactions) >= len(uniform_group)
        assert session.added_pois()
        assert session.removed_pois()
        refined = app.refine_profile_batch(profile, session)
        assert not np.allclose(refined.concatenated(),
                               profile.concatenated())

    def test_objective_value_facade(self, app, uniform_group, default_query):
        profile = uniform_group.profile()
        package = app.build_for_profile(profile, default_query)
        assert app.objective_value(package, profile) > 0.0

    def test_weights_flow_through_facade(self, small_city):
        app = GroupTravel(small_city, weights=ObjectiveWeights(gamma=2.0),
                          seed=3, lda_iterations=10)
        assert app.kfc.weights.gamma == 2.0
