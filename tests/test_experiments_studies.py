"""Tests for the user-study and customization-study experiment modules
(small-scale, exercising the full protocol plumbing)."""

import math

import pytest

from repro.experiments import table4, table5, table6, table7
from repro.experiments.context import ExperimentConfig, ExperimentContext
from repro.experiments.customization_study import (
    NON_UNIFORM_SIZE,
    STRATEGY_PAIRS,
    UNIFORM_SIZE,
    run_customization_study,
)
from repro.experiments.user_study import (
    COMPARISON_PAIRS,
    PACKAGE_LABELS,
    run_user_study,
)


@pytest.fixture(scope="module")
def study_ctx():
    config = ExperimentConfig(scale=0.3, n_groups=2, lda_iterations=20,
                              sizes={"small": 5, "large": 12}, seed=77)
    return ExperimentContext(config)


@pytest.fixture(scope="module")
def study(study_ctx):
    return run_user_study(study_ctx)


@pytest.fixture(scope="module")
def customization(study_ctx):
    return run_customization_study(study_ctx)


class TestUserStudy:
    def test_every_cell_present(self, study, study_ctx):
        expected = {(u, s) for u in (True, False)
                    for s in study_ctx.config.sizes}
        assert set(study.cells) == expected

    def test_ratings_in_scale(self, study):
        for cell in study.cells.values():
            assert set(cell.mean_ratings) == set(PACKAGE_LABELS)
            for value in cell.mean_ratings.values():
                assert 1.0 <= value <= 5.0

    def test_supremacy_percentages(self, study):
        for cell in study.cells.values():
            assert set(cell.supremacy) == set(COMPARISON_PAIRS)
            for value in cell.supremacy.values():
                assert math.isnan(value) or 0.0 <= value <= 100.0

    def test_attentive_counts_positive(self, study):
        assert all(cell.n_attentive > 0 for cell in study.cells.values())

    def test_recruitment_bookkeeping(self, study):
        assert study.n_retained <= study.n_recruited
        assert study.total_paid > 0

    def test_table4_render(self, study_ctx, study):
        text = table4.run(study_ctx, study=study).render()
        assert "Table 4" in text
        assert "recruited" in text

    def test_table5_render(self, study_ctx, study):
        text = table5.run(study_ctx, study=study).render()
        assert "Table 5" in text
        assert "AVTP vs NPTP" in text


class TestCustomizationStudy:
    def test_group_sizes_match_paper(self, customization):
        assert customization.cells[True].group_size == UNIFORM_SIZE == 11
        assert customization.cells[False].group_size == NON_UNIFORM_SIZE == 7

    def test_interactions_happened(self, customization):
        for cell in customization.cells.values():
            assert cell.n_interactions >= cell.group_size

    def test_ratings_and_supremacy_well_formed(self, customization):
        for cell in customization.cells.values():
            for value in cell.mean_ratings.values():
                assert 1.0 <= value <= 5.0
            assert set(cell.supremacy) == set(STRATEGY_PAIRS)

    def test_renders(self, study_ctx, customization):
        t6 = table6.run(study_ctx, study=customization).render()
        t7 = table7.run(study_ctx, study=customization).render()
        assert "Table 6" in t6 and "uniform (11 members)" in t6
        assert "Table 7" in t7 and "batch vs individual" in t7
