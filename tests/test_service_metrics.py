"""merge_snapshots edge cases.

The shard layer trusts :func:`repro.service.merge_snapshots` to build
one cluster-wide view from per-worker pictures, so the degenerate
shapes -- no shards, shards that saw disjoint operations, shards that
predate the histogram format -- must all merge cleanly, and histogram
merges must be exact and order-independent.
"""

import json
import random

import pytest

from repro.service import ServiceMetrics, merge_snapshots


def _metrics_with(samples: dict[str, list[float]]) -> ServiceMetrics:
    metrics = ServiceMetrics()
    for op, values in samples.items():
        for value in values:
            metrics.record(op, value)
    return metrics


def test_empty_input_merges_to_an_empty_snapshot():
    merged = merge_snapshots([])
    assert merged["operations"] == {}
    assert merged["total_operations"] == 0
    assert merged["throughput_per_s"] == 0.0
    assert merged["uptime_s"] == 0.0


def test_snapshot_without_operations_key_is_tolerated():
    merged = merge_snapshots([{}, {"uptime_s": 2.0}])
    assert merged["operations"] == {}
    assert merged["uptime_s"] == 2.0
    assert merged["throughput_per_s"] == 0.0


def test_disjoint_operation_sets_union():
    a = _metrics_with({"build": [0.01, 0.02]}).snapshot()
    b = _metrics_with({"customize": [0.005]}).snapshot()
    c = _metrics_with({"refine": [0.5], "build": [0.04]}).snapshot()
    merged = merge_snapshots([a, b, c])
    ops = merged["operations"]
    assert set(ops) == {"build", "customize", "refine"}
    assert ops["build"]["count"] == 3
    assert ops["customize"]["count"] == 1
    assert merged["total_operations"] == 5


def test_merged_percentiles_equal_union_of_observations():
    rng = random.Random(11)
    union = ServiceMetrics()
    shards = []
    for _ in range(5):
        shard = ServiceMetrics()
        for _ in range(300):
            value = rng.uniform(1e-5, 0.3)
            shard.record("build", value)
            union.record("build", value)
        shards.append(shard.snapshot())
    merged = merge_snapshots(shards)["operations"]["build"]
    expected = union.snapshot()["operations"]["build"]
    for key in ("count", "p50_ms", "p90_ms", "p95_ms", "p99_ms",
                "min_ms", "max_ms"):
        assert merged[key] == expected[key], key
    assert merged["total_ms"] == pytest.approx(expected["total_ms"])


def test_merge_is_order_independent():
    shards = []
    for seed in range(4):
        rng = random.Random(seed)
        shard = ServiceMetrics()
        for _ in range(100):
            shard.record("build", rng.uniform(1e-4, 0.1))
        shards.append(shard.snapshot())
    forward = merge_snapshots(shards)["operations"]
    shuffled = merge_snapshots(list(reversed(shards)))["operations"]
    assert forward == shuffled


def test_merge_survives_json_round_trip():
    # Snapshots cross the process boundary as JSON: string bucket keys
    # must merge with in-process integer ones.
    shard = _metrics_with({"build": [0.01, 0.02, 0.2]})
    wire = json.loads(json.dumps(shard.snapshot()))
    merged = merge_snapshots([wire, shard.snapshot()])
    assert merged["operations"]["build"]["count"] == 6
    assert (merged["operations"]["build"]["p99_ms"]
            == shard.snapshot()["operations"]["build"]["p99_ms"])


def test_legacy_snapshot_without_buckets_still_folds():
    legacy = {
        "uptime_s": 1.0,
        "operations": {
            "build": {"count": 4, "total_ms": 40.0, "mean_ms": 10.0,
                      "min_ms": 5.0, "max_ms": 20.0,
                      "p50_ms": 9.0, "p95_ms": 19.0},
        },
    }
    modern = _metrics_with({"build": [0.001]}).snapshot()
    merged = merge_snapshots([legacy, modern])["operations"]["build"]
    assert merged["count"] == 5
    assert merged["total_ms"] == pytest.approx(41.0, rel=0.01)
    assert merged["max_ms"] >= 20.0
    assert merged["min_ms"] > 0.0
    # Two legacy snapshots alone: count-weighted percentile fallback.
    two = merge_snapshots([legacy, legacy])["operations"]["build"]
    assert two["count"] == 8
    assert two["p50_ms"] == pytest.approx(9.0)


def test_zero_count_operations_do_not_divide():
    empty = {"uptime_s": 0.0, "operations": {
        "build": {"count": 0, "total_ms": 0.0, "mean_ms": 0.0,
                  "min_ms": 0.0, "max_ms": 0.0, "p50_ms": 0.0,
                  "p95_ms": 0.0},
    }}
    merged = merge_snapshots([empty, empty])
    assert merged["operations"]["build"]["count"] == 0
    assert merged["operations"]["build"]["mean_ms"] == 0.0
    assert merged["throughput_per_s"] == 0.0


def test_uptime_is_cluster_wall_clock_not_a_sum():
    a = {"uptime_s": 2.0, "operations": {}}
    b = {"uptime_s": 3.0, "operations": {}}
    merged = merge_snapshots([a, b])
    assert merged["uptime_s"] == 3.0
