"""Tests for the persistent city-asset store (``repro.store``).

The contract under test, in order of importance:

1. **Byte-identity.**  Assets that go through disk must serve the same
   bytes as freshly-fitted ones -- asserted against the golden package
   fixtures (captured from the pre-refactor seed implementation) on the
   *loaded* path, across three cities, three seeds and budgeted builds.
2. **Corruption safety.**  Truncation, bit flips, missing files,
   version skew and key mismatches all degrade to a miss (refit), never
   to an exception on the serving path.
3. **Concurrency.**  Many readers/writers on one store root, and many
   threads on one registry, produce exactly one fit's worth of work and
   no torn entries.
4. **Registry integration.**  ``CityRegistry(store=...)`` loads before
   fitting, writes back on a miss, counts provenance, and (with
   ``max_cities``) evicts LRU entries that a store hit brings back
   cheaply.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.kfc import KFCBuilder
from repro.core.query import DEFAULT_QUERY, GroupQuery
from repro.data.synthetic import generate_city
from repro.profiles.generator import GroupGenerator
from repro.profiles.vectors import ItemVectorIndex
from repro.service.registry import CityRegistry, populate_store
from repro.service.schema import BuildRequest, GroupSpec
from repro.store import (
    FORMAT_VERSION,
    AssetStore,
    CityAssets,
    Segment,
    dataset_content_hash,
    repair_store,
)
from repro.store.assets import _MANIFEST, _SEGMENT


def _region_offset(entry, prefix, min_bytes=16) -> int:
    """File offset of the first segment region under ``prefix`` big
    enough to corrupt meaningfully."""
    segment = Segment.open(entry / _SEGMENT, verify_pages=False)
    region = next(r for r in sorted(segment.regions.values(),
                                    key=lambda r: r.offset)
                  if r.name.startswith(prefix) and r.nbytes >= min_bytes)
    return region.offset


def _flip_byte(path, offset) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_packages.json"

#: Small-city knobs shared by the fast tests (the golden tests use the
#: golden config instead).
FAST = dict(seed=5, scale=0.15, lda_iterations=5)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture()
def store(tmp_path):
    return AssetStore(tmp_path / "assets")


@pytest.fixture(scope="module")
def fast_fit():
    """One fitted (dataset, index, arrays) triple at the FAST scale,
    via a plain registry -- the reference the store tests compare to."""
    registry = CityRegistry(**FAST)
    entry = registry.entry("paris")
    return entry


def _package_bytes(package) -> list:
    return [
        ([p.id for p in ci.pois], tuple(float.hex(c) for c in ci.centroid))
        for ci in package.composite_items
    ]


class TestRoundTrip:
    def test_save_then_load_serves_identical_assets(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        assert loaded is not None
        assert loaded.dataset.to_json() == fast_fit.dataset.to_json()
        assert loaded.item_index.schema == fast_fit.item_index.schema
        for poi in fast_fit.dataset:
            assert np.array_equal(loaded.item_index.vector(poi.id),
                                  fast_fit.item_index.vector(poi.id))
        assert loaded.arrays.origin == fast_fit.arrays.origin
        assert loaded.arrays.max_distance_km == fast_fit.arrays.max_distance_km
        assert np.array_equal(loaded.arrays.xy, fast_fit.arrays.xy)
        for cat, ca in fast_fit.arrays.categories.items():
            cb = loaded.arrays.categories[cat]
            for field in ("ids", "rows", "lats", "lons", "costs",
                          "vectors", "vector_norms", "cost_order"):
                assert np.array_equal(getattr(ca, field), getattr(cb, field))

    def test_loaded_assets_build_identical_packages(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        profile = GroupGenerator(fast_fit.schema, seed=3).uniform_group(4).profile()
        fresh = fast_fit.builder.build(profile, DEFAULT_QUERY)
        hydrated = KFCBuilder(loaded.dataset, loaded.item_index,
                              seed=FAST["seed"],
                              arrays=loaded.arrays).build(profile,
                                                          DEFAULT_QUERY)
        assert _package_bytes(fresh) == _package_bytes(hydrated)

    def test_restored_topic_models_answer_identically(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        for cat in ("rest", "attr"):
            fitted = fast_fit.item_index.topic_model(cat)
            restored = loaded.item_index.topic_model(cat)
            assert fitted.topic_labels() == restored.topic_labels()
            assert np.array_equal(fitted.document_topics(),
                                  restored.document_topics())
            assert np.array_equal(
                fitted.infer_theta(["museum", "garden"], seed=4),
                restored.infer_theta(["museum", "garden"], seed=4),
            )

    def test_contains_and_keys(self, store, fast_fit):
        assert not store.contains("paris", **FAST)
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        assert store.contains("paris", **FAST)
        assert len(store.keys()) == 1
        stats = store.stats()
        assert stats["entries"] == 1 and stats["writes"] == 1
        assert stats["disk_bytes"] > 0


class TestGoldenLoadedPath:
    """The acceptance bar: golden fixtures (pre-refactor bytes) must
    pass when every asset came off disk."""

    @pytest.fixture(scope="class")
    def golden_store(self, golden, tmp_path_factory):
        """One store holding every golden city's assets, fitted once."""
        cfg = golden["config"]
        store = AssetStore(tmp_path_factory.mktemp("golden-store"))
        for city in sorted({b["city"] for b in golden["builds"]}):
            dataset = generate_city(city, seed=cfg["city_seed"],
                                    scale=cfg["scale"])
            index = ItemVectorIndex.fit(dataset,
                                        lda_iterations=cfg["lda_iterations"],
                                        seed=cfg["app_seed"])
            fitted = KFCBuilder(dataset, index, k=5, seed=cfg["app_seed"])
            store.save(CityAssets(dataset, index, fitted.arrays),
                       city=city, seed=cfg["city_seed"], scale=cfg["scale"],
                       lda_iterations=cfg["lda_iterations"])
        return store

    def _hydrate(self, golden, store, city):
        cfg = golden["config"]
        loaded = store.load(city, seed=cfg["city_seed"], scale=cfg["scale"],
                            lda_iterations=cfg["lda_iterations"])
        assert loaded is not None
        builder = KFCBuilder(loaded.dataset, loaded.item_index, k=5,
                             seed=cfg["app_seed"], arrays=loaded.arrays)
        group = GroupGenerator(
            loaded.item_index.schema, seed=cfg["group_seed"]
        ).uniform_group(cfg["group_size"])
        return builder, group.profile(), loaded.item_index

    def _assert_golden(self, golden, build, system):
        builder, profile, item_index = system
        query = (DEFAULT_QUERY if build["budget"] is None else
                 GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                               budget=build["budget"]))
        pkg = builder.build(profile, query, seed=build["seed"])
        assert [[p.id for p in ci.pois] for ci in pkg.composite_items] \
            == [ci["poi_ids"] for ci in build["cis"]]
        assert [[float.hex(c) for c in ci.centroid]
                for ci in pkg.composite_items] \
            == [ci["centroid"] for ci in build["cis"]]
        assert {
            "representativity_km": float.hex(pkg.representativity()),
            "within_ci_km": float.hex(pkg.raw_cohesiveness_sum()),
            "personalization": float.hex(
                pkg.personalization(profile, item_index)),
        } == build["metrics"]

    def test_loaded_path_matches_golden(self, golden, golden_store):
        systems = {}
        for build in golden["builds"]:
            city = build["city"]
            if city not in systems:
                systems[city] = self._hydrate(golden, golden_store, city)
            self._assert_golden(golden, build, systems[city])

    def test_golden_survives_page_damage_and_repair(self, golden,
                                                    golden_store):
        """The ISSUE's repair acceptance bar: flip bytes in one arrays
        page, repair (dataset + index salvaged, arrays refitted), and
        the golden fixtures still pass -- because the repaired segment
        is *byte-identical* to the pristine one."""
        city = sorted({b["city"] for b in golden["builds"]})[0]
        cfg = golden["config"]
        entry = golden_store.path(golden_store.key(
            city, seed=cfg["city_seed"], scale=cfg["scale"],
            lda_iterations=cfg["lda_iterations"]))
        pristine = (entry / _SEGMENT).read_bytes()

        _flip_byte(entry / _SEGMENT, _region_offset(entry, "arrays/") + 11)
        assert golden_store.load(city, seed=cfg["city_seed"],
                                 scale=cfg["scale"],
                                 lda_iterations=cfg["lda_iterations"]) is None

        reports = {r.name: r for r in repair_store(golden_store)}
        report = reports[entry.name]
        assert report.status == "repaired"
        assert report.damaged_pages >= 1
        assert set(report.salvaged) == {"dataset", "index"}
        assert report.refitted == ("arrays",)
        assert all(r.status == "ok" for n, r in reports.items()
                   if n != entry.name)

        # Determinism makes the refit byte-exact, not just equivalent.
        assert (entry / _SEGMENT).read_bytes() == pristine
        system = self._hydrate(golden, golden_store, city)
        for build in golden["builds"]:
            if build["city"] == city:
                self._assert_golden(golden, build, system)


class TestCorruptionFallback:
    @pytest.fixture()
    def saved(self, store, fast_fit):
        path = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                     fast_fit.arrays), city="paris", **FAST)
        return path

    def test_bit_flip_in_arrays_region_is_a_miss(self, store, saved):
        # A flipped byte inside an arrays/* data page fails exactly that
        # page's crc32 on the load path.
        _flip_byte(saved / _SEGMENT, _region_offset(saved, "arrays/") + 3)
        assert store.load("paris", **FAST) is None
        assert store.stats()["corrupt"] == 1

    def test_bit_flip_in_dataset_region_is_a_miss(self, store, saved):
        _flip_byte(saved / _SEGMENT, _region_offset(saved, "dataset") + 3)
        assert store.load("paris", **FAST) is None

    def test_truncated_segment_is_a_miss(self, store, saved):
        target = saved / _SEGMENT
        target.write_bytes(target.read_bytes()[: 100])
        assert store.load("paris", **FAST) is None

    def test_missing_payload_file_is_a_miss(self, store, saved):
        (saved / _SEGMENT).unlink()
        assert store.load("paris", **FAST) is None

    def test_unparseable_manifest_is_a_miss(self, store, saved):
        (saved / _MANIFEST).write_text("{not json")
        assert store.load("paris", **FAST) is None

    def test_digest_pass_but_malformed_payload_is_a_miss(self, store,
                                                         saved, fast_fit):
        # Rewrite the payload *and* its manifest record: the segment
        # layer (magic/structure checks) must still reject it.
        target = saved / _SEGMENT
        target.write_bytes(b"GTSG not really a segment")
        manifest = json.loads((saved / _MANIFEST).read_text())
        import hashlib
        manifest["files"][_SEGMENT] = {
            "sha256": hashlib.sha256(target.read_bytes()).hexdigest(),
            "nbytes": target.stat().st_size,
        }
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_cheap_contains_trusts_manifest_deep_contains_catches(
            self, store, saved):
        # The warmup pre-check is manifest-only (no payload bytes
        # read), so a data-page flip is invisible to it -- by design:
        # load() still catches it, and verify_digests=True is the
        # opt-in deep answer.
        _flip_byte(saved / _SEGMENT, _region_offset(saved, "arrays/") + 3)
        assert store.contains("paris", **FAST)
        assert not store.contains("paris", verify_digests=True, **FAST)
        assert store.load("paris", **FAST) is None

    def test_registry_refits_over_a_corrupt_entry(self, store, saved,
                                                  fast_fit):
        (saved / _SEGMENT).write_bytes(b"garbage")
        registry = CityRegistry(store=store, **FAST)
        entry = registry.entry("paris")  # falls back to a refit
        assert registry.stats()["counters"]["fits"] == 1
        assert registry.stats()["counters"]["store_misses"] == 1
        profile = GroupGenerator(entry.schema, seed=3).uniform_group(4).profile()
        assert _package_bytes(entry.builder.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(fast_fit.builder.build(profile, DEFAULT_QUERY))
        # ... and the write-back *repaired* the entry on disk: the
        # garbage payload is gone and the entry loads again.
        assert (saved / _SEGMENT).read_bytes() != b"garbage"
        assert store.load("paris", **FAST) is not None


class TestVersionAndKeyMismatch:
    def test_format_version_skew_is_a_miss(self, store, fast_fit):
        saved = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                      fast_fit.arrays), city="paris", **FAST)
        manifest = json.loads((saved / _MANIFEST).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_key_field_mismatch_is_a_miss(self, store, fast_fit):
        saved = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                      fast_fit.arrays), city="paris", **FAST)
        manifest = json.loads((saved / _MANIFEST).read_text())
        manifest["key"]["lda_iterations"] = 999
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_different_config_never_sees_the_entry(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        other = dict(FAST, lda_iterations=FAST["lda_iterations"] + 1)
        assert store.load("paris", **other) is None
        registry = CityRegistry(store=store, **other)
        registry.entry("paris")
        assert registry.stats()["counters"]["fits"] == 1  # keyed apart


class TestSlugCollision:
    """Regression: distinct keys whose cities sanitize to one slug must
    publish side by side, not evict each other (the pre-v2 dirname had
    no key hash, so \"são paulo\" and \"s_o paulo\" shared a directory
    and every save of one clobbered the other)."""

    CITIES = ("são paulo", "s_o paulo")

    def test_colliding_slugs_get_distinct_directories(self, store, fast_fit):
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        paths = [store.save(assets, city=c, **FAST) for c in self.CITIES]
        # Same human-readable slug...
        slugs = {p.name.split("-seed")[0] for p in paths}
        assert slugs == {"s_o_paulo"}
        # ... but the key hash keeps the directories apart.
        assert len({p.name for p in paths}) == 2
        assert len(store.keys()) == 2

    def test_colliding_slugs_round_trip_independently(self, store, fast_fit):
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        for city in self.CITIES:
            store.save(assets, city=city, **FAST)
        for city in self.CITIES:
            assert store.contains(city, **FAST)
            assert store.load(city, **FAST) is not None
        # A re-save of one is a race (equal content already published),
        # never a replacement of the *other* key's entry.
        store.save(assets, city=self.CITIES[0], **FAST)
        stats = store.stats()
        assert stats["writes"] == 2 and stats["write_races"] == 1
        assert store.load(self.CITIES[1], **FAST) is not None


class TestCrashMidPublish:
    """A writer SIGKILLed between payload write and rename must leave a
    clean miss plus temp litter that the store reaps (age-gated)."""

    def _tmp_dir(self, root, name, age_s):
        tmp = root / name
        tmp.mkdir(parents=True)
        (tmp / _SEGMENT).write_bytes(b"partial write, never published")
        old = time.time() - age_s
        os.utime(tmp, (old, old))
        return tmp

    def test_stale_tmp_reaped_on_init_fresh_kept(self, tmp_path):
        root = tmp_path / "assets"
        stale = self._tmp_dir(root, ".tmp-paris-crashed-deadbeef", 7200)
        fresh = self._tmp_dir(root, ".tmp-paris-inflight-cafe0001", 5)
        store = AssetStore(root)
        assert not stale.exists()          # crash litter: gone
        assert fresh.exists()              # live writer: untouched
        assert store.stats()["reaped_tmp"] == 1
        # The interrupted publish is an honest miss on the serving path.
        assert store.load("paris", **FAST) is None
        assert "paris" not in str(store.keys())

    def test_reap_is_age_gated_and_dry_runnable(self, tmp_path):
        root = tmp_path / "assets"
        root.mkdir()
        store = AssetStore(root)
        stale = self._tmp_dir(root, ".tmp-a", 7200)
        would = store.reap_tmp(dry_run=True)
        assert would == [stale.name] and stale.exists()
        assert store.reap_tmp(ttl_s=10 ** 9) == []     # too young for TTL
        assert store.reap_tmp() == [stale.name]
        assert not stale.exists()


class TestPrune:
    def _publish(self, store, fast_fit, cities):
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        return {city: store.save(assets, city=city, **FAST)
                for city in cities}

    def test_prune_removes_stale_versions_and_litter(self, store, fast_fit):
        self._publish(store, fast_fit, ["paris"])
        stale = store.root / f"oldcity-seed1-scale0.5-lda5-deadbeef-v{FORMAT_VERSION - 1}"
        stale.mkdir()
        (stale / "payload.bin").write_bytes(b"x" * 4096)
        tmp = store.root / ".tmp-crashed"
        tmp.mkdir()
        old = time.time() - 7200
        os.utime(tmp, (old, old))

        report = store.prune(dry_run=True)
        assert report["stale_version"] == [stale.name]
        assert report["tmp"] == [tmp.name]
        assert report["dry_run"] and stale.exists() and tmp.exists()

        report = store.prune()
        assert report["freed_bytes"] >= 4096
        assert not stale.exists() and not tmp.exists()
        assert store.load("paris", **FAST) is not None   # current: kept
        assert store.stats()["pruned"] == 1

    def test_prune_evicts_lru_by_recency(self, store, fast_fit):
        paths = self._publish(store, fast_fit, ["paris", "rome", "oslo"])
        now = time.time()
        for age_s, city in ((3000, "rome"), (2000, "paris"), (0, "oslo")):
            os.utime(paths[city] / _SEGMENT, (now - age_s, now - age_s))

        report = store.prune(max_entries=1)
        assert report["lru"] == [paths["rome"].name, paths["paris"].name]
        assert report["kept"] == 1
        assert store.load("oslo", **FAST) is not None
        assert store.load("rome", **FAST) is None

    def test_prune_max_bytes(self, store, fast_fit):
        paths = self._publish(store, fast_fit, ["paris", "rome"])
        now = time.time()
        os.utime(paths["paris"] / _SEGMENT, (now - 500, now - 500))
        per_entry = sum(f.stat().st_size
                        for f in paths["rome"].glob("*"))
        report = store.prune(max_bytes=per_entry + 16)
        assert report["lru"] == [paths["paris"].name]   # oldest goes first
        assert report["kept_bytes"] <= per_entry + 16

    def _publish_versions(self, store, fast_fit):
        """Two dataset versions of one paris identity (as live
        mutations leave behind) plus an unrelated rome entry."""
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        old = store.save(assets, city="paris", dataset_hash="aaaa1111",
                         **FAST)
        new = store.save(assets, city="paris", dataset_hash="bbbb2222",
                         **FAST)
        other = store.save(assets, city="rome", **FAST)
        now = time.time()
        # The stale version is the most recently *read* but an older
        # *write*: keep-latest-only must key on mtime, never atime (a
        # stale epoch someone just looked at is still stale).
        os.utime(old / _SEGMENT, (now, now - 3000))
        os.utime(new / _SEGMENT, (now - 3000, now - 10))
        return old, new, other

    def test_prune_keep_latest_only_drops_superseded(self, store, fast_fit):
        old, new, other = self._publish_versions(store, fast_fit)

        report = store.prune(keep_latest_only=True, dry_run=True)
        assert report["superseded"] == [old.name]
        assert report["dry_run"] and old.exists()

        report = store.prune(keep_latest_only=True)
        assert report["superseded"] == [old.name]
        assert report["freed_bytes"] > 0 and report["kept"] == 2
        assert not old.exists() and new.exists() and other.exists()
        assert store.load("paris", dataset_hash="bbbb2222",
                          **FAST) is not None
        assert store.load("paris", dataset_hash="aaaa1111", **FAST) is None
        # Without the flag, versions coexist (the default stays safe).
        assert store.prune()["superseded"] == []

    def test_prune_keep_latest_only_cli(self, store, fast_fit, capsys):
        from repro.store.__main__ import main as store_main

        old, new, other = self._publish_versions(store, fast_fit)
        status = store_main(["--root", str(store.root), "--json", "prune",
                             "--keep-latest-only", "--dry-run"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["superseded"] == [old.name] and report["dry_run"]
        assert old.exists()

        status = store_main(["--root", str(store.root), "prune",
                             "--keep-latest-only"])
        assert status == 0
        assert "superseded" in capsys.readouterr().out
        assert not old.exists() and new.exists() and other.exists()


class TestRegistryIntegration:
    def test_miss_fits_and_writes_back_hit_skips_the_fit(self, store):
        cold = CityRegistry(store=store, **FAST)
        entry = cold.entry("paris")
        counters = cold.stats()["counters"]
        assert counters == {"fits": 1, "store_hits": 0, "store_misses": 1,
                            "evictions": 0, "mutations": 0, "log_replays": 0}
        assert store.contains("paris", **FAST)

        warm = CityRegistry(store=store, **FAST)
        hydrated = warm.entry("paris")
        counters = warm.stats()["counters"]
        assert counters == {"fits": 0, "store_hits": 1, "store_misses": 0,
                            "evictions": 0, "mutations": 0, "log_replays": 0}
        profile = GroupGenerator(entry.schema, seed=9).uniform_group(5).profile()
        assert _package_bytes(entry.builder.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(hydrated.builder.build(profile, DEFAULT_QUERY))

    def test_service_responses_identical_across_fit_and_hydrate(self, store):
        from repro.service.engine import PackageService

        request = BuildRequest(city="paris",
                               group_spec=GroupSpec(size=4, seed=13))
        cold = PackageService(CityRegistry(store=store, **FAST))
        warm = PackageService(CityRegistry(store=store, **FAST))
        a = cold.build(request)
        b = warm.build(request)
        assert a.ok and b.ok
        assert a.package.to_dict() == b.package.to_dict()
        assert warm.stats()["registry"]["counters"]["fits"] == 0

    def test_registered_datasets_bypass_the_store(self, store, fast_fit):
        registry = CityRegistry(store=store, **FAST)
        registry.register(fast_fit.dataset, fast_fit.item_index,
                          name="customcity")
        assert not store.keys()  # nothing persisted for registered data
        assert registry.stats()["counters"]["fits"] == 0

    def test_populate_store_pays_one_fit_per_missing_city(self, store):
        failed = populate_store(store, ["paris", "paris", "nosuchcity"],
                                **FAST)
        assert set(failed) == {"nosuchcity"}
        assert store.contains("paris", **FAST)
        # A second populate is all hits.
        assert populate_store(store, ["paris"], **FAST) == {}
        assert store.stats()["writes"] == 1


class TestBoundedResidency:
    def test_lru_eviction_and_bytes_accounting(self, store):
        registry = CityRegistry(store=store, max_cities=2, **FAST)
        registry.entry("paris")
        registry.entry("barcelona")
        stats = registry.stats()
        assert stats["cities"] == ["barcelona", "paris"]
        assert all(size > 0 for size in stats["bytes_by_city"].values())
        assert stats["total_bytes"] == sum(stats["bytes_by_city"].values())

        registry.entry("rome")  # evicts paris (LRU)
        stats = registry.stats()
        assert stats["cities"] == ["barcelona", "rome"]
        assert stats["counters"]["evictions"] == 1

        # A touch refreshes recency: barcelona survives the next insert.
        registry.entry("barcelona")
        registry.entry("london")
        assert "barcelona" in registry.stats()["cities"]

        # The evicted city comes back from disk, not from a refit.
        fits_before = registry.stats()["counters"]["fits"]
        registry.entry("paris")
        counters = registry.stats()["counters"]
        assert counters["fits"] == fits_before
        assert counters["store_hits"] >= 1

    def test_max_cities_validation(self):
        with pytest.raises(ValueError):
            CityRegistry(max_cities=0)


class TestConcurrentAccess:
    def test_one_registry_many_threads_one_fit(self, store):
        registry = CityRegistry(store=store, **FAST)
        with ThreadPoolExecutor(max_workers=8) as pool:
            entries = list(pool.map(lambda _: registry.entry("paris"),
                                    range(16)))
        assert all(e is entries[0] for e in entries)
        assert registry.stats()["counters"]["fits"] == 1

    def test_many_registries_share_one_store_root(self, store):
        def load(_):
            registry = CityRegistry(store=store, **FAST)
            return registry.entry("paris")

        with ThreadPoolExecutor(max_workers=6) as pool:
            entries = list(pool.map(load, range(6)))
        profile = GroupGenerator(entries[0].schema, seed=2).uniform_group(3).profile()
        packages = {
            json.dumps(_package_bytes(e.builder.build(profile, DEFAULT_QUERY)))
            for e in entries
        }
        assert len(packages) == 1  # every racer serves identical bytes
        assert store.contains("paris", **FAST)

    def test_concurrent_saves_leave_one_valid_entry(self, store, fast_fit):
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)

        def save(_):
            return store.save(assets, city="paris", **FAST)

        with ThreadPoolExecutor(max_workers=8) as pool:
            paths = list(pool.map(save, range(16)))
        assert len({str(p) for p in paths}) == 1
        assert store.contains("paris", **FAST)
        assert len(store.keys()) == 1
        stats = store.stats()
        assert stats["writes"] + stats["write_races"] == 16
        # No temp-dir litter survives the stampede.
        leftovers = [p for p in Path(store.root).iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestShardConfigStore:
    def test_workers_hydrate_from_the_store(self, store):
        from repro.service.shard import ShardCluster, ShardConfig

        populate_store(store, ["paris", "barcelona"], **FAST)
        config = ShardConfig(store_path=str(store.root), **FAST)
        with ShardCluster(shards=2, config=config,
                          cities=["paris", "barcelona"],
                          use_processes=False) as cluster:
            warmed = cluster.warm()
            assert sorted(warmed["cities"]) == ["barcelona", "paris"]
            stats = cluster.stats()
            merged = stats["registry"]["counters"]
            assert merged["fits"] == 0
            assert merged["store_hits"] == 2
            assert stats["restarted"] == 0
            assert all("restarted" in shard for shard in stats["shards"])
            response = cluster.dispatch("build", {
                "city": "paris", "group_spec": {"size": 3, "seed": 1},
            })
            assert response.get("error") is None


class TestDatasetHashKeys:
    """Wire-registered (non-template) cities persist under a dataset
    content hash; hash-keyed entries are never "repaired" into
    template data."""

    def test_hash_changes_key_and_dirname(self, store, fast_fit):
        digest = dataset_content_hash(fast_fit.dataset)
        plain = store.key("paris", **FAST)
        hashed = store.key("paris", dataset_hash=digest, **FAST)
        assert plain.dataset_hash is None
        assert hashed.dataset_hash == digest
        assert plain.dirname() != hashed.dirname()
        assert f"-d{digest[:8]}-" in hashed.dirname()
        assert hashed.to_dict()["dataset_hash"] == digest

    def test_hash_keyed_save_and_load_round_trip(self, store, fast_fit):
        digest = dataset_content_hash(fast_fit.dataset)
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        store.save(assets, city="wirecity", dataset_hash=digest, **FAST)
        # The plain key and a different hash are both misses.
        assert store.load("wirecity", **FAST) is None
        assert store.load("wirecity", dataset_hash="0" * 16, **FAST) is None
        loaded = store.load("wirecity", dataset_hash=digest, **FAST)
        assert loaded is not None
        assert dataset_content_hash(loaded.dataset) == digest

    def test_wire_registration_persists_across_restart(self, store,
                                                       fast_fit):
        cold = CityRegistry(store=store, **FAST)
        entry = cold.register(fast_fit.dataset, name="wirecity")
        assert cold.stats()["counters"]["fits"] == 1
        digest = dataset_content_hash(fast_fit.dataset)
        assert store.contains("wirecity", dataset_hash=digest, **FAST)

        warm = CityRegistry(store=store, **FAST)
        hydrated = warm.register(fast_fit.dataset, name="wirecity")
        counters = warm.stats()["counters"]
        assert counters["fits"] == 0 and counters["store_hits"] == 1
        profile = GroupGenerator(entry.schema,
                                 seed=9).uniform_group(5).profile()
        assert _package_bytes(entry.builder.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(hydrated.builder.build(profile, DEFAULT_QUERY))

    def test_different_content_is_a_different_key(self, store, fast_fit):
        registry = CityRegistry(store=store, **FAST)
        registry.register(fast_fit.dataset, name="wirecity")
        other = generate_city("barcelona", seed=8, scale=0.15)
        registry.register(other, name="wirecity")
        assert registry.stats()["counters"]["fits"] == 2
        assert len(store.keys()) == 2  # one entry per content hash

    def test_caller_supplied_index_still_bypasses_the_store(self, store,
                                                            fast_fit):
        registry = CityRegistry(store=store, **FAST)
        registry.register(fast_fit.dataset, fast_fit.item_index,
                          name="wirecity")
        assert not store.keys()

    def test_damaged_dataset_in_hash_keyed_entry_is_unrecoverable(
            self, store, fast_fit):
        digest = dataset_content_hash(fast_fit.dataset)
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)
        entry = store.save(assets, city="paris", dataset_hash=digest, **FAST)
        _flip_byte(entry / _SEGMENT, _region_offset(entry, "dataset") + 8)
        report = repair_store(store, [entry.name])[0]
        assert report.status == "unrecoverable"
        assert "content-hashed" in report.detail
        # The same damage on a template-keyed entry stays repairable.
        plain = store.save(assets, city="paris", **FAST)
        _flip_byte(plain / _SEGMENT, _region_offset(plain, "dataset") + 8)
        report = repair_store(store, [plain.name])[0]
        assert report.status == "repaired"
