"""Tests for the persistent city-asset store (``repro.store``).

The contract under test, in order of importance:

1. **Byte-identity.**  Assets that go through disk must serve the same
   bytes as freshly-fitted ones -- asserted against the golden package
   fixtures (captured from the pre-refactor seed implementation) on the
   *loaded* path, across three cities, three seeds and budgeted builds.
2. **Corruption safety.**  Truncation, bit flips, missing files,
   version skew and key mismatches all degrade to a miss (refit), never
   to an exception on the serving path.
3. **Concurrency.**  Many readers/writers on one store root, and many
   threads on one registry, produce exactly one fit's worth of work and
   no torn entries.
4. **Registry integration.**  ``CityRegistry(store=...)`` loads before
   fitting, writes back on a miss, counts provenance, and (with
   ``max_cities``) evicts LRU entries that a store hit brings back
   cheaply.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.kfc import KFCBuilder
from repro.core.query import DEFAULT_QUERY, GroupQuery
from repro.data.synthetic import generate_city
from repro.profiles.generator import GroupGenerator
from repro.profiles.vectors import ItemVectorIndex
from repro.service.registry import CityRegistry, populate_store
from repro.service.schema import BuildRequest, GroupSpec
from repro.store import FORMAT_VERSION, AssetStore, CityAssets
from repro.store.assets import _ARRAYS, _DATASET, _MANIFEST

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_packages.json"

#: Small-city knobs shared by the fast tests (the golden tests use the
#: golden config instead).
FAST = dict(seed=5, scale=0.15, lda_iterations=5)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture()
def store(tmp_path):
    return AssetStore(tmp_path / "assets")


@pytest.fixture(scope="module")
def fast_fit():
    """One fitted (dataset, index, arrays) triple at the FAST scale,
    via a plain registry -- the reference the store tests compare to."""
    registry = CityRegistry(**FAST)
    entry = registry.entry("paris")
    return entry


def _package_bytes(package) -> list:
    return [
        ([p.id for p in ci.pois], tuple(float.hex(c) for c in ci.centroid))
        for ci in package.composite_items
    ]


class TestRoundTrip:
    def test_save_then_load_serves_identical_assets(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        assert loaded is not None
        assert loaded.dataset.to_json() == fast_fit.dataset.to_json()
        assert loaded.item_index.schema == fast_fit.item_index.schema
        for poi in fast_fit.dataset:
            assert np.array_equal(loaded.item_index.vector(poi.id),
                                  fast_fit.item_index.vector(poi.id))
        assert loaded.arrays.origin == fast_fit.arrays.origin
        assert loaded.arrays.max_distance_km == fast_fit.arrays.max_distance_km
        assert np.array_equal(loaded.arrays.xy, fast_fit.arrays.xy)
        for cat, ca in fast_fit.arrays.categories.items():
            cb = loaded.arrays.categories[cat]
            for field in ("ids", "rows", "lats", "lons", "costs",
                          "vectors", "vector_norms", "cost_order"):
                assert np.array_equal(getattr(ca, field), getattr(cb, field))

    def test_loaded_assets_build_identical_packages(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        profile = GroupGenerator(fast_fit.schema, seed=3).uniform_group(4).profile()
        fresh = fast_fit.builder.build(profile, DEFAULT_QUERY)
        hydrated = KFCBuilder(loaded.dataset, loaded.item_index,
                              seed=FAST["seed"],
                              arrays=loaded.arrays).build(profile,
                                                          DEFAULT_QUERY)
        assert _package_bytes(fresh) == _package_bytes(hydrated)

    def test_restored_topic_models_answer_identically(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        loaded = store.load("paris", **FAST)
        for cat in ("rest", "attr"):
            fitted = fast_fit.item_index.topic_model(cat)
            restored = loaded.item_index.topic_model(cat)
            assert fitted.topic_labels() == restored.topic_labels()
            assert np.array_equal(fitted.document_topics(),
                                  restored.document_topics())
            assert np.array_equal(
                fitted.infer_theta(["museum", "garden"], seed=4),
                restored.infer_theta(["museum", "garden"], seed=4),
            )

    def test_contains_and_keys(self, store, fast_fit):
        assert not store.contains("paris", **FAST)
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        assert store.contains("paris", **FAST)
        assert len(store.keys()) == 1
        stats = store.stats()
        assert stats["entries"] == 1 and stats["writes"] == 1
        assert stats["disk_bytes"] > 0


class TestGoldenLoadedPath:
    """The acceptance bar: golden fixtures (pre-refactor bytes) must
    pass when every asset came off disk."""

    @pytest.fixture(scope="class")
    def hydrated_systems(self, golden, tmp_path_factory):
        cfg = golden["config"]
        store = AssetStore(tmp_path_factory.mktemp("golden-store"))
        out = {}
        for city in sorted({b["city"] for b in golden["builds"]}):
            dataset = generate_city(city, seed=cfg["city_seed"],
                                    scale=cfg["scale"])
            index = ItemVectorIndex.fit(dataset,
                                        lda_iterations=cfg["lda_iterations"],
                                        seed=cfg["app_seed"])
            fitted = KFCBuilder(dataset, index, k=5, seed=cfg["app_seed"])
            store.save(CityAssets(dataset, index, fitted.arrays),
                       city=city, seed=cfg["city_seed"], scale=cfg["scale"],
                       lda_iterations=cfg["lda_iterations"])
            loaded = store.load(city, seed=cfg["city_seed"],
                                scale=cfg["scale"],
                                lda_iterations=cfg["lda_iterations"])
            assert loaded is not None
            builder = KFCBuilder(loaded.dataset, loaded.item_index, k=5,
                                 seed=cfg["app_seed"], arrays=loaded.arrays)
            group = GroupGenerator(
                loaded.item_index.schema, seed=cfg["group_seed"]
            ).uniform_group(cfg["group_size"])
            out[city] = (builder, group.profile(), loaded.item_index)
        return out

    def test_loaded_path_matches_golden(self, golden, hydrated_systems):
        for build in golden["builds"]:
            builder, profile, item_index = hydrated_systems[build["city"]]
            query = (DEFAULT_QUERY if build["budget"] is None else
                     GroupQuery.of(acco=1, trans=1, rest=1, attr=3,
                                   budget=build["budget"]))
            pkg = builder.build(profile, query, seed=build["seed"])
            assert [[p.id for p in ci.pois] for ci in pkg.composite_items] \
                == [ci["poi_ids"] for ci in build["cis"]]
            assert [[float.hex(c) for c in ci.centroid]
                    for ci in pkg.composite_items] \
                == [ci["centroid"] for ci in build["cis"]]
            assert {
                "representativity_km": float.hex(pkg.representativity()),
                "within_ci_km": float.hex(pkg.raw_cohesiveness_sum()),
                "personalization": float.hex(
                    pkg.personalization(profile, item_index)),
            } == build["metrics"]


class TestCorruptionFallback:
    @pytest.fixture()
    def saved(self, store, fast_fit):
        path = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                     fast_fit.arrays), city="paris", **FAST)
        return path

    def test_bit_flip_in_arrays_is_a_miss(self, store, saved):
        target = saved / _ARRAYS
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert store.load("paris", **FAST) is None
        assert store.stats()["corrupt"] == 1

    def test_truncated_dataset_is_a_miss(self, store, saved):
        target = saved / _DATASET
        target.write_bytes(target.read_bytes()[: 100])
        assert store.load("paris", **FAST) is None

    def test_missing_payload_file_is_a_miss(self, store, saved):
        (saved / _ARRAYS).unlink()
        assert store.load("paris", **FAST) is None

    def test_unparseable_manifest_is_a_miss(self, store, saved):
        (saved / _MANIFEST).write_text("{not json")
        assert store.load("paris", **FAST) is None

    def test_digest_pass_but_malformed_payload_is_a_miss(self, store,
                                                         saved, fast_fit):
        # Rewrite a payload file *and* its manifest digest: the format
        # layer (shape checks in restore()) must still reject it.
        target = saved / _ARRAYS
        target.write_bytes(b"PK\x03\x04 not an npz")
        manifest = json.loads((saved / _MANIFEST).read_text())
        import hashlib
        manifest["files"][_ARRAYS] = hashlib.sha256(
            target.read_bytes()).hexdigest()
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_registry_refits_over_a_corrupt_entry(self, store, saved,
                                                  fast_fit):
        (saved / _ARRAYS).write_bytes(b"garbage")
        registry = CityRegistry(store=store, **FAST)
        entry = registry.entry("paris")  # falls back to a refit
        assert registry.stats()["counters"]["fits"] == 1
        assert registry.stats()["counters"]["store_misses"] == 1
        profile = GroupGenerator(entry.schema, seed=3).uniform_group(4).profile()
        assert _package_bytes(entry.builder.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(fast_fit.builder.build(profile, DEFAULT_QUERY))
        # ... and the write-back *repaired* the entry on disk: the
        # garbage payload is gone and the entry loads again.
        assert (saved / _ARRAYS).read_bytes() != b"garbage"
        assert store.load("paris", **FAST) is not None


class TestVersionAndKeyMismatch:
    def test_format_version_skew_is_a_miss(self, store, fast_fit):
        saved = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                      fast_fit.arrays), city="paris", **FAST)
        manifest = json.loads((saved / _MANIFEST).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_key_field_mismatch_is_a_miss(self, store, fast_fit):
        saved = store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                                      fast_fit.arrays), city="paris", **FAST)
        manifest = json.loads((saved / _MANIFEST).read_text())
        manifest["key"]["lda_iterations"] = 999
        (saved / _MANIFEST).write_text(json.dumps(manifest))
        assert store.load("paris", **FAST) is None

    def test_different_config_never_sees_the_entry(self, store, fast_fit):
        store.save(CityAssets(fast_fit.dataset, fast_fit.item_index,
                              fast_fit.arrays), city="paris", **FAST)
        other = dict(FAST, lda_iterations=FAST["lda_iterations"] + 1)
        assert store.load("paris", **other) is None
        registry = CityRegistry(store=store, **other)
        registry.entry("paris")
        assert registry.stats()["counters"]["fits"] == 1  # keyed apart


class TestRegistryIntegration:
    def test_miss_fits_and_writes_back_hit_skips_the_fit(self, store):
        cold = CityRegistry(store=store, **FAST)
        entry = cold.entry("paris")
        counters = cold.stats()["counters"]
        assert counters == {"fits": 1, "store_hits": 0, "store_misses": 1,
                            "evictions": 0}
        assert store.contains("paris", **FAST)

        warm = CityRegistry(store=store, **FAST)
        hydrated = warm.entry("paris")
        counters = warm.stats()["counters"]
        assert counters == {"fits": 0, "store_hits": 1, "store_misses": 0,
                            "evictions": 0}
        profile = GroupGenerator(entry.schema, seed=9).uniform_group(5).profile()
        assert _package_bytes(entry.builder.build(profile, DEFAULT_QUERY)) \
            == _package_bytes(hydrated.builder.build(profile, DEFAULT_QUERY))

    def test_service_responses_identical_across_fit_and_hydrate(self, store):
        from repro.service.engine import PackageService

        request = BuildRequest(city="paris",
                               group_spec=GroupSpec(size=4, seed=13))
        cold = PackageService(CityRegistry(store=store, **FAST))
        warm = PackageService(CityRegistry(store=store, **FAST))
        a = cold.build(request)
        b = warm.build(request)
        assert a.ok and b.ok
        assert a.package.to_dict() == b.package.to_dict()
        assert warm.stats()["registry"]["counters"]["fits"] == 0

    def test_registered_datasets_bypass_the_store(self, store, fast_fit):
        registry = CityRegistry(store=store, **FAST)
        registry.register(fast_fit.dataset, fast_fit.item_index,
                          name="customcity")
        assert not store.keys()  # nothing persisted for registered data
        assert registry.stats()["counters"]["fits"] == 0

    def test_populate_store_pays_one_fit_per_missing_city(self, store):
        failed = populate_store(store, ["paris", "paris", "nosuchcity"],
                                **FAST)
        assert set(failed) == {"nosuchcity"}
        assert store.contains("paris", **FAST)
        # A second populate is all hits.
        assert populate_store(store, ["paris"], **FAST) == {}
        assert store.stats()["writes"] == 1


class TestBoundedResidency:
    def test_lru_eviction_and_bytes_accounting(self, store):
        registry = CityRegistry(store=store, max_cities=2, **FAST)
        registry.entry("paris")
        registry.entry("barcelona")
        stats = registry.stats()
        assert stats["cities"] == ["barcelona", "paris"]
        assert all(size > 0 for size in stats["bytes_by_city"].values())
        assert stats["total_bytes"] == sum(stats["bytes_by_city"].values())

        registry.entry("rome")  # evicts paris (LRU)
        stats = registry.stats()
        assert stats["cities"] == ["barcelona", "rome"]
        assert stats["counters"]["evictions"] == 1

        # A touch refreshes recency: barcelona survives the next insert.
        registry.entry("barcelona")
        registry.entry("london")
        assert "barcelona" in registry.stats()["cities"]

        # The evicted city comes back from disk, not from a refit.
        fits_before = registry.stats()["counters"]["fits"]
        registry.entry("paris")
        counters = registry.stats()["counters"]
        assert counters["fits"] == fits_before
        assert counters["store_hits"] >= 1

    def test_max_cities_validation(self):
        with pytest.raises(ValueError):
            CityRegistry(max_cities=0)


class TestConcurrentAccess:
    def test_one_registry_many_threads_one_fit(self, store):
        registry = CityRegistry(store=store, **FAST)
        with ThreadPoolExecutor(max_workers=8) as pool:
            entries = list(pool.map(lambda _: registry.entry("paris"),
                                    range(16)))
        assert all(e is entries[0] for e in entries)
        assert registry.stats()["counters"]["fits"] == 1

    def test_many_registries_share_one_store_root(self, store):
        def load(_):
            registry = CityRegistry(store=store, **FAST)
            return registry.entry("paris")

        with ThreadPoolExecutor(max_workers=6) as pool:
            entries = list(pool.map(load, range(6)))
        profile = GroupGenerator(entries[0].schema, seed=2).uniform_group(3).profile()
        packages = {
            json.dumps(_package_bytes(e.builder.build(profile, DEFAULT_QUERY)))
            for e in entries
        }
        assert len(packages) == 1  # every racer serves identical bytes
        assert store.contains("paris", **FAST)

    def test_concurrent_saves_leave_one_valid_entry(self, store, fast_fit):
        assets = CityAssets(fast_fit.dataset, fast_fit.item_index,
                            fast_fit.arrays)

        def save(_):
            return store.save(assets, city="paris", **FAST)

        with ThreadPoolExecutor(max_workers=8) as pool:
            paths = list(pool.map(save, range(16)))
        assert len({str(p) for p in paths}) == 1
        assert store.contains("paris", **FAST)
        assert len(store.keys()) == 1
        stats = store.stats()
        assert stats["writes"] + stats["write_races"] == 16
        # No temp-dir litter survives the stampede.
        leftovers = [p for p in Path(store.root).iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestShardConfigStore:
    def test_workers_hydrate_from_the_store(self, store):
        from repro.service.shard import ShardCluster, ShardConfig

        populate_store(store, ["paris", "barcelona"], **FAST)
        config = ShardConfig(store_path=str(store.root), **FAST)
        with ShardCluster(shards=2, config=config,
                          cities=["paris", "barcelona"],
                          use_processes=False) as cluster:
            warmed = cluster.warm()
            assert sorted(warmed["cities"]) == ["barcelona", "paris"]
            stats = cluster.stats()
            merged = stats["registry"]["counters"]
            assert merged["fits"] == 0
            assert merged["store_hits"] == 2
            assert stats["restarted"] == 0
            assert all("restarted" in shard for shard in stats["shards"])
            response = cluster.dispatch("build", {
                "city": "paris", "group_spec": {"size": 3, "seed": 1},
            })
            assert response.get("error") is None
