"""The observability layer: log-bucketed histograms, trace contexts,
span collection, the slowest-trace ring, the NDJSON event log and its
validator.

Histogram merges are the load-bearing guarantee -- cluster-wide
percentiles must equal percentiles over the union of observations, in
any merge order -- so those tests compare against brute-force unions.
"""

import json
import math

import pytest

from repro.obs import (
    EventLog,
    LogHistogram,
    ObsConfig,
    SlowTraceRing,
    TraceContext,
    Tracer,
    current_activation,
    merge_snapshot_dicts,
    stage,
    use_activation,
)
from repro.obs.check import check_log_lines
from repro.obs.histogram import bucket_index, bucket_upper_s


class TestLogHistogram:
    def test_empty_snapshot_is_all_zero(self):
        snap = LogHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_ms"] == 0.0
        assert snap["p50_ms"] == 0.0 and snap["p99_ms"] == 0.0
        assert snap["buckets"] == {}

    def test_quantiles_bound_observations(self):
        hist = LogHistogram()
        samples = [0.001, 0.002, 0.004, 0.008, 0.2]
        for s in samples:
            hist.record(s)
        snap = hist.snapshot()
        assert snap["count"] == len(samples)
        # Bucketed quantiles land on a bucket's upper edge: never below
        # the true quantile, and within one growth factor above it.
        assert snap["p50_ms"] >= 4.0
        assert snap["p99_ms"] >= 200.0
        assert snap["p50_ms"] <= snap["p90_ms"] <= snap["p99_ms"]
        assert snap["min_ms"] == pytest.approx(1.0)
        assert snap["max_ms"] == pytest.approx(200.0)

    def test_bucket_relative_error_is_bounded(self):
        # Growth 2^(1/8): upper edge within ~9.1% of any sample.
        for seconds in (1e-6, 3.7e-5, 1e-3, 0.25, 2.0, 50.0):
            upper = bucket_upper_s(bucket_index(seconds))
            assert seconds <= upper <= seconds * 2 ** 0.125 * 1.0001

    def test_merge_equals_union(self):
        import random
        rng = random.Random(5)
        parts = []
        union = LogHistogram()
        for _ in range(4):
            hist = LogHistogram()
            for _ in range(200):
                value = rng.uniform(1e-5, 0.5)
                hist.record(value)
                union.record(value)
            parts.append(hist.snapshot())
        merged = merge_snapshot_dicts(parts)
        expected = union.snapshot()
        for key in ("count", "p50_ms", "p90_ms", "p95_ms", "p99_ms",
                    "min_ms", "max_ms"):
            assert merged[key] == expected[key], key
        assert merged["total_ms"] == pytest.approx(expected["total_ms"])

    def test_merge_is_order_independent(self):
        a, b, c = LogHistogram(), LogHistogram(), LogHistogram()
        for i, hist in enumerate((a, b, c)):
            for j in range(50):
                hist.record((i + 1) * (j + 1) * 1e-4)
        snaps = [a.snapshot(), b.snapshot(), c.snapshot()]
        forward = merge_snapshot_dicts(snaps)
        backward = merge_snapshot_dicts(list(reversed(snaps)))
        assert forward == backward

    def test_merge_tolerates_empty_and_zero_count(self):
        assert merge_snapshot_dicts([])["count"] == 0
        assert merge_snapshot_dicts([])["p99_ms"] == 0.0
        hist = LogHistogram()
        hist.record(0.01)
        merged = merge_snapshot_dicts([LogHistogram().snapshot(),
                                       hist.snapshot()])
        assert merged["count"] == 1
        assert merged["min_ms"] == pytest.approx(10.0, rel=0.1)

    def test_json_round_trip_preserves_merge(self):
        hist = LogHistogram()
        for value in (1e-4, 2e-3, 0.5):
            hist.record(value)
        snap = json.loads(json.dumps(hist.snapshot()))
        merged = merge_snapshot_dicts([snap, snap])
        assert merged["count"] == 6
        assert merged["p99_ms"] == hist.snapshot()["p99_ms"]

    def test_non_positive_durations_count_in_first_bucket(self):
        hist = LogHistogram()
        hist.record(0.0)
        hist.record(-1.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert math.isfinite(snap["p99_ms"])


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="abc", span_id="s1", sent_s=12.5,
                           sampled=False)
        back = TraceContext.from_wire(ctx.to_wire())
        assert back == ctx

    @pytest.mark.parametrize("garbage", [
        None, 7, "x", [], {}, {"trace_id": 3}, {"trace_id": ""},
        {"span_id": "s"},
    ])
    def test_garbage_yields_none(self, garbage):
        assert TraceContext.from_wire(garbage) is None

    def test_bad_optional_fields_degrade(self):
        ctx = TraceContext.from_wire({"trace_id": "t", "span_id": 5,
                                      "sent_s": "soon"})
        assert ctx is not None
        assert ctx.span_id is None and ctx.sent_s is None


class TestTracer:
    def test_stage_without_activation_is_noop(self):
        with stage("anything"):
            pass  # must not raise, record, or allocate per call
        assert current_activation() is None

    def test_activation_collects_a_complete_span_tree(self):
        tracer = Tracer()
        with tracer.activate("serve:build") as act:
            assert act is not None
            with stage("outer", city="paris"):
                with stage("inner"):
                    pass
        traces = tracer.slowest_traces()
        assert len(traces) == 1
        spans = traces[0]["spans"]
        assert {s["name"] for s in spans} == {"serve:build", "outer",
                                              "inner"}
        by_name = {s["name"]: s for s in spans}
        assert by_name["serve:build"]["parent_id"] is None
        assert by_name["outer"]["parent_id"] == by_name["serve:build"]["span_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["city"] == "paris"
        summary, problems = check_log_lines(
            json.dumps(dict(s, kind="span")) for s in spans
        )
        assert problems == []
        assert summary["traces"] == 1

    def test_histograms_cover_every_request_spans_only_sampled(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.activate("serve:build") as act:
            assert act is not None and not act.sampled
            with stage("assemble", city="rome"):
                pass
        assert tracer.slowest_traces() == []
        snap = tracer.snapshot()
        assert snap["stages"]["assemble"]["count"] == 1
        assert snap["cities"]["rome"]["count"] == 1
        assert snap["counters"]["traces"] == 0

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.activate("serve:build") as act:
            assert act is None
            with stage("assemble"):
                pass
        assert tracer.snapshot()["stages"] == {}

    def test_election_is_deterministic_across_tracers(self):
        a = Tracer(sample_rate=0.37)
        b = Tracer(sample_rate=0.37)
        ids = [f"trace-{i}" for i in range(200)]
        decisions = [a.elects(t) for t in ids]
        assert decisions == [b.elects(t) for t in ids]
        assert any(decisions) and not all(decisions)

    def test_queue_wait_recorded_from_upstream_stamp(self):
        tracer = Tracer()
        ctx = TraceContext(trace_id="t1", span_id="fe-1", sent_s=0.0)
        with tracer.activate("serve:build", ctx):
            pass
        snap = tracer.snapshot()
        assert snap["stages"]["queue_wait"]["count"] == 1
        trace = tracer.slowest_traces()[0]
        names = {s["name"] for s in trace["spans"]}
        assert names == {"serve:build", "queue_wait"}
        assert all(s["trace_id"] == "t1" for s in trace["spans"])

    def test_error_spans_carry_the_failure(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.activate("serve:build"):
                with stage("assemble"):
                    raise ValueError("boom")
        spans = tracer.slowest_traces()[0]["spans"]
        by_name = {s["name"]: s for s in spans}
        assert "boom" in by_name["assemble"]["error"]
        assert "boom" in by_name["serve:build"]["error"]

    def test_batch_thread_rebinding(self):
        from concurrent.futures import ThreadPoolExecutor
        tracer = Tracer()
        with tracer.activate("serve:batch"):
            act = current_activation()

            def work(i):
                with use_activation(act):
                    with stage(f"element-{i}"):
                        return current_activation().trace_id

            with ThreadPoolExecutor(max_workers=2) as pool:
                ids = list(pool.map(work, range(4)))
        trace = tracer.slowest_traces()[0]
        assert set(ids) == {trace["trace_id"]}
        names = {s["name"] for s in trace["spans"]}
        assert {f"element-{i}" for i in range(4)} <= names

    def test_merge_obs_sums_exactly(self):
        a, b = Tracer(), Tracer()
        for tracer, ms in ((a, 0.01), (b, 0.05)):
            with tracer.activate("serve:build"):
                with stage("assemble", city="paris"):
                    pass
            tracer.record_stage("assemble", ms)
        merged = Tracer.merge_obs([a.snapshot(), None, b.snapshot()])
        assert merged["stages"]["assemble"]["count"] == 4
        assert merged["cities"]["paris"]["count"] == 2
        assert merged["counters"]["traces"] == 2

    def test_merge_obs_surfaces_log_written_and_dropped(self, tmp_path):
        # Satellite of the windowed-telemetry work: best-effort event
        # logs drop silently per process; the merged stats view must
        # total written/dropped so the loss is visible cluster-wide.
        healthy = ObsConfig(log_path=str(tmp_path / "a.ndjson"))
        broken = ObsConfig(log_path=str(tmp_path / "b.ndjson"))
        a, b = healthy.make_tracer(), broken.make_tracer()
        with a.activate("serve:build"):
            pass
        b.log.close()  # every subsequent write drops
        with b.activate("serve:build"):
            pass
        merged = Tracer.merge_obs([a.snapshot(), b.snapshot()])
        assert merged["log"]["written"] >= 1
        assert merged["log"]["dropped"] >= 1
        a.close()
        # Logless snapshots merge without inventing a log section.
        plain = Tracer()
        assert "log" not in Tracer.merge_obs([plain.snapshot()])

    def test_hist_key_table_is_bounded(self):
        tracer = Tracer()
        for i in range(500):
            tracer.record_stage(f"client-controlled-{i}", 0.001)
        stages = tracer.snapshot()["stages"]
        assert len(stages) <= 129  # _MAX_HIST_KEYS + __other__
        assert stages["__other__"]["count"] > 0


class TestSlowTraceRing:
    def test_keeps_the_slowest(self):
        ring = SlowTraceRing(capacity=3)
        for ms in (5.0, 30.0, 1.0, 20.0, 50.0):
            ring.offer({"trace_id": f"t{ms}", "duration_ms": ms})
        slowest = ring.slowest()
        assert [t["duration_ms"] for t in slowest] == [50.0, 30.0, 20.0]
        assert ring.slowest(limit=1)[0]["duration_ms"] == 50.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowTraceRing(capacity=0)


class TestMergeTraces:
    def test_portions_union_by_trace_id(self):
        front = [{"trace_id": "t1", "name": "request:build",
                  "duration_ms": 10.0,
                  "spans": [{"span_id": "f1"}, {"span_id": "f2"}]}]
        worker = [{"trace_id": "t1", "name": "serve:build",
                   "duration_ms": 8.0, "shard": 1,
                   "spans": [{"span_id": "w1"}]},
                  {"trace_id": "t2", "name": "serve:build",
                   "duration_ms": 30.0, "spans": [{"span_id": "w2"}]}]
        merged = Tracer.merge_traces([front, worker])
        assert [t["trace_id"] for t in merged] == ["t2", "t1"]
        t1 = merged[1]
        assert {s["span_id"] for s in t1["spans"]} == {"f1", "f2", "w1"}
        assert t1["duration_ms"] == 10.0  # the largest portion wins
        assert t1["name"] == "request:build"

    def test_limit_none_returns_everything(self):
        traces = [[{"trace_id": f"t{i}", "duration_ms": float(i),
                    "spans": []}] for i in range(40)]
        assert len(Tracer.merge_traces(traces, limit=None)) == 40
        assert len(Tracer.merge_traces(traces, limit=5)) == 5

    def test_duplicate_spans_are_not_doubled(self):
        portion = {"trace_id": "t", "duration_ms": 1.0,
                   "spans": [{"span_id": "s1"}]}
        merged = Tracer.merge_traces([[portion], [portion]])
        assert len(merged[0]["spans"]) == 1


class TestEventLog:
    def test_spans_logged_as_ndjson(self, tmp_path):
        path = tmp_path / "events.ndjson"
        config = ObsConfig(log_path=str(path))
        tracer = config.make_tracer(shard=3)
        with tracer.activate("serve:build"):
            with stage("assemble", city="paris"):
                pass
        tracer.error("kaboom", code="failed", city="paris")
        tracer.close()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [r["kind"] for r in records]
        assert kinds.count("span") == 2 and kinds.count("error") == 1
        assert all(r["shard"] == 3 for r in records if r["kind"] == "span")
        summary, problems = check_log_lines(lines)
        assert problems == []
        assert summary["errors"] == 1

    def test_write_failures_never_raise(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog(str(path))
        log.close()
        log.write("span", {"x": 1})  # closed handle: dropped, not raised
        assert log.stats()["dropped"] == 1

    def test_unserializable_values_are_coerced(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog(str(path))
        log.write("error", {"value": object()})
        log.close()
        assert log.stats()["written"] == 1
        json.loads(path.read_text())


class TestCheckLogLines:
    def test_flags_broken_trees_and_bad_lines(self):
        lines = [
            "not json",
            json.dumps({"no_kind": True}),
            json.dumps({"kind": "span", "trace_id": "t", "span_id": "a",
                        "name": "root", "duration_ms": 1.0,
                        "parent_id": None}),
            json.dumps({"kind": "span", "trace_id": "t", "span_id": "b",
                        "name": "child", "duration_ms": 0.5,
                        "parent_id": "missing"}),
            json.dumps({"kind": "span", "trace_id": "u", "span_id": "c",
                        "name": "orphan", "duration_ms": float("nan"),
                        "parent_id": None}),
        ]
        summary, problems = check_log_lines(lines)
        text = "\n".join(problems)
        assert "not JSON" in text
        assert "not an event object" in text
        assert "dangling parent" in text
        assert "bad duration" in text
        assert summary["traces"] == 2

    def test_empty_log_is_clean(self):
        summary, problems = check_log_lines([])
        assert problems == [] and summary["records"] == 0

    def test_main_json_output_is_machine_readable(self, tmp_path, capsys):
        from repro.obs.check import main

        log = tmp_path / "events.ndjson"
        log.write_text(json.dumps({
            "kind": "span", "trace_id": "t", "span_id": "a",
            "name": "root", "duration_ms": 1.0, "parent_id": None,
        }) + "\n")
        assert main([str(log), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["summary"]["traces"] == 1
        assert report["problems"] == []

        # --min-traces failures surface in the JSON, not just the exit.
        assert main([str(log), "--json", "--min-traces", "5"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any("expected at least 5" in p for p in report["problems"])


class TestObsConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            ObsConfig(slowest=0)

    def test_disabled_config_makes_logless_tracer(self, tmp_path):
        config = ObsConfig(enabled=False, log_path=str(tmp_path / "x"))
        tracer = config.make_tracer()
        assert not tracer.enabled and tracer.log is None

    def test_config_is_picklable(self):
        import pickle
        config = ObsConfig(sample_rate=0.5, slowest=8, log_path="-")
        assert pickle.loads(pickle.dumps(config)) == config
