"""Fast-mode tests for the experiment runners (the table/figure code)."""

import numpy as np
import pytest

from repro.experiments import distance_perf, figure1, figure3
from repro.experiments import table2, table3
from repro.experiments.context import ExperimentConfig, ExperimentContext
from repro.experiments.reporting import format_table, pct, rating
from repro.experiments.synthetic_sweep import (
    CONSENSUS_METHODS,
    MEDIAN,
    run_sweep,
)


@pytest.fixture(scope="module")
def tiny_ctx():
    config = ExperimentConfig(scale=0.25, n_groups=2, lda_iterations=20,
                              sizes={"small": 4, "large": 8}, seed=5)
    return ExperimentContext(config)


@pytest.fixture(scope="module")
def sweep(tiny_ctx):
    return run_sweep(tiny_ctx)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_cells(self):
        assert pct(97.4) == "97%"
        assert rating(3.768) == "3.77"


class TestContext:
    def test_datasets_cached(self, tiny_ctx):
        assert tiny_ctx.dataset("paris") is tiny_ctx.dataset("paris")

    def test_apps_cached(self, tiny_ctx):
        assert tiny_ctx.app("paris") is tiny_ctx.app("paris")

    def test_fast_config_smaller(self):
        fast = ExperimentConfig.fast()
        assert fast.n_groups < ExperimentConfig().n_groups
        assert fast.sizes["large"] < 100


class TestSweep:
    def test_record_volume(self, tiny_ctx, sweep):
        cells = 2 * len(tiny_ctx.config.sizes) * tiny_ctx.config.n_groups
        per_group = len(CONSENSUS_METHODS) + 1  # + median
        assert len(sweep.records) == cells * per_group

    def test_s_constant_is_max(self, sweep):
        assert sweep.s_constant == max(r.raw_cohesiveness_sum
                                       for r in sweep.records)

    def test_normalized_in_unit_interval(self, sweep):
        for record in sweep.records:
            dims = sweep.normalized(record)
            for value in dims.values():
                assert -1e-9 <= value <= 1.0 + 1e-9

    def test_select_filters(self, sweep):
        subset = sweep.select(uniform=True, method=MEDIAN)
        assert subset
        assert all(r.uniform and r.method == MEDIAN for r in subset)

    def test_cell_means_missing_cell_raises(self, sweep):
        with pytest.raises(ValueError, match="no records"):
            sweep.cell_means(True, "nonexistent", "average")


class TestTable2:
    def test_run_and_render(self, tiny_ctx, sweep):
        result = table2.run(tiny_ctx, sweep=sweep)
        text = result.render()
        assert "Table 2" in text
        assert "AVTP:R" in text
        assert "ANOVA" in text
        # Every cell present.
        assert len(result.cells) == 2 * len(tiny_ctx.config.sizes) * 4

    def test_anova_outputs_all_dimensions(self, tiny_ctx, sweep):
        result = table2.run(tiny_ctx, sweep=sweep)
        assert set(result.anova) == {"R", "C", "P"}

    def test_pcc_values_bounded(self, tiny_ctx, sweep):
        result = table2.run(tiny_ctx, sweep=sweep)
        for value in result.uniform_size_pcc.values():
            assert -1.0 <= value <= 1.0


class TestTable3:
    def test_run_and_render(self, tiny_ctx, sweep):
        result = table3.run(tiny_ctx, sweep=sweep)
        text = result.render()
        assert "Table 3" in text
        for cell in result.cells.values():
            for value in cell.values():
                assert 0.0 <= value <= 1.0


class TestFigures:
    def test_figure1_valid_budgeted_package(self, tiny_ctx):
        result = figure1.run(tiny_ctx)
        assert result.package.k == 5
        assert result.package.is_valid(result.query)
        text = result.render()
        assert "DAY 1" in text and "DAY 5" in text
        assert "[A]" in text and "[H]" in text

    def test_figure3_all_operators(self, tiny_ctx):
        result = figure3.run(tiny_ctx)
        assert result.after.k == result.before.k + 1
        text = result.render()
        for op in ("REMOVE", "ADD", "REPLACE", "GENERATE"):
            assert op in text


class TestDistancePerf:
    def test_report(self):
        result = distance_perf.run(n_pairs=5_000, scalar_pairs=2_000)
        assert result.max_relative_error < 0.001
        assert result.vector_haversine_s > 0
        assert "0.1%" in result.render()


class TestCLI:
    def test_parser_and_context(self):
        from repro.experiments.cli import build_parser, make_context
        args = build_parser().parse_args(
            ["table2", "--fast", "--groups", "3", "--seed", "1"]
        )
        ctx = make_context(args)
        assert ctx.config.n_groups == 3
        assert ctx.config.seed == 1
        assert ctx.config.scale == ExperimentConfig.fast().scale

    def test_cli_runs_distance(self, capsys):
        from repro.experiments.cli import main
        assert main(["distance", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "distance" in out
