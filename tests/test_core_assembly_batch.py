"""The batched assembly kernel vs the per-centroid reference.

Three guarantees:

1. ``assemble_composite_items`` (batched, with or without grid pruning)
   is **bit-identical** to calling the per-centroid kernel once per
   centroid -- same POI ids, same in-CI order (the ``(-score, id)``
   tie-break), same centroids -- across random centroids, weights and
   pool sizes (property-based);
2. the pruner's degenerate cases are safe: a single occupied cell, a
   pool target covering the whole category, and a geometry where the
   radius bound excludes nothing all fall back to the full scan;
   separated clusters actually prune;
3. the scan counters flow end to end: ``collect_assembly_counters``
   around a build, and the serving engine's ``stats()["assembly"]`` /
   windowed ``assembly.*`` metrics.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import make_poi
from repro.core.arrays import CityArrays
from repro.core.assembly import (
    InfeasibleQueryError,
    assemble_composite_item,
    assemble_composite_items,
    collect_assembly_counters,
)
from repro.core.query import DEFAULT_QUERY, GroupQuery
from repro.data.dataset import POIDataset
from repro.profiles.generator import GroupGenerator
from repro.profiles.vectors import ItemVectorIndex


@pytest.fixture(scope="module")
def arrays(app):
    return CityArrays.of(app.dataset, app.item_index)


@pytest.fixture(scope="module")
def profile(uniform_group):
    return uniform_group.profile()


def _keys(cis):
    """The full observable identity of a CI list: ids in selection
    order (which exposes the pool's (-score, id) order) + centroid."""
    return [([p.id for p in ci.pois], ci.centroid) for ci in cis]


def _tiny_city(lat_offsets, lon_offsets, *, cat="rest",
               base=(48.85, 2.35)):
    """A one-category dataset with POIs at base + per-POI offsets,
    its fitted index, arrays bundle and a matching profile."""
    pois = [make_poi(i, cat=cat, lat=base[0] + dlat, lon=base[1] + dlon,
                     cost=1.0 + (i % 3))
            for i, (dlat, dlon) in enumerate(zip(lat_offsets, lon_offsets))]
    dataset = POIDataset(pois, city="tiny")
    index = ItemVectorIndex.fit(dataset, lda_iterations=5, seed=3)
    arrays = CityArrays.of(dataset, index)
    prof = GroupGenerator(index.schema, seed=5).uniform_group(3).profile()
    return dataset, index, arrays, prof


def _compare(dataset, index, arrays, prof, cents, query, *,
             beta=1.0, gamma=1.0, pool=60):
    """Batched (forced-prune and auto) vs the per-centroid reference;
    returns the forced-prune counters for the caller to assert on."""
    ref = [assemble_composite_item(dataset, (float(la), float(lo)), query,
                                   prof, index, beta=beta, gamma=gamma,
                                   candidate_pool=pool, arrays=arrays,
                                   prune=False)
           for la, lo in cents]
    with collect_assembly_counters() as scans:
        pruned = assemble_composite_items(dataset, cents, query, prof, index,
                                          beta=beta, gamma=gamma,
                                          candidate_pool=pool, arrays=arrays,
                                          prune=True)
    auto = assemble_composite_items(dataset, cents, query, prof, index,
                                    beta=beta, gamma=gamma,
                                    candidate_pool=pool, arrays=arrays)
    assert _keys(pruned) == _keys(ref) == _keys(auto)
    return scans


class TestBatchedEqualsReference:
    """Property: batched + pruned output is bit-for-bit the reference."""

    @given(data=st.data())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_centroids_weights_pools(self, data, app, arrays,
                                            profile, small_city):
        coords = small_city.coordinates()
        lat_lo, lon_lo = coords.min(axis=0) - 0.01
        lat_hi, lon_hi = coords.max(axis=0) + 0.01
        k = data.draw(st.integers(1, 4), label="k")
        cents = np.array([
            [data.draw(st.floats(lat_lo, lat_hi), label=f"lat{i}"),
             data.draw(st.floats(lon_lo, lon_hi), label=f"lon{i}")]
            for i in range(k)
        ])
        beta = data.draw(st.floats(0.0, 8.0), label="beta")
        gamma = data.draw(st.floats(0.0, 8.0), label="gamma")
        pool = data.draw(st.integers(1, 80), label="pool")
        budget = data.draw(st.one_of(st.just(math.inf),
                                     st.floats(20.0, 60.0)), label="budget")
        query = GroupQuery.of(acco=1, trans=1, rest=1,
                              attr=data.draw(st.integers(1, 3), label="attr"),
                              budget=budget)

        try:
            ref = [assemble_composite_item(
                       app.dataset, (float(la), float(lo)), query, profile,
                       app.item_index, beta=beta, gamma=gamma,
                       candidate_pool=pool, arrays=arrays, prune=False)
                   for la, lo in cents]
        except InfeasibleQueryError:
            for prune in (True, None):
                with pytest.raises(InfeasibleQueryError):
                    assemble_composite_items(
                        app.dataset, cents, query, profile, app.item_index,
                        beta=beta, gamma=gamma, candidate_pool=pool,
                        arrays=arrays, prune=prune)
            return

        for prune in (True, None):
            batched = assemble_composite_items(
                app.dataset, cents, query, profile, app.item_index,
                beta=beta, gamma=gamma, candidate_pool=pool, arrays=arrays,
                prune=prune)
            assert _keys(batched) == _keys(ref)

    def test_object_path_plural_matches_loop(self, app, profile):
        """Without arrays the plural form must equal the object-path
        loop too (no batching, same reference semantics)."""
        cents = np.asarray(app.dataset.coordinates()[:3], dtype=float)
        loop = [assemble_composite_item(app.dataset, (float(la), float(lo)),
                                        DEFAULT_QUERY, profile,
                                        app.item_index)
                for la, lo in cents]
        plural = assemble_composite_items(app.dataset, cents, DEFAULT_QUERY,
                                          profile, app.item_index)
        assert _keys(plural) == _keys(loop)

    def test_centroid_shape_validated(self, app, profile):
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            assemble_composite_items(app.dataset, np.zeros((2, 3)),
                                     DEFAULT_QUERY, profile, app.item_index)

    def test_zero_centroids_build_nothing(self, app, profile):
        assert assemble_composite_items(
            app.dataset, np.empty((0, 2)), DEFAULT_QUERY, profile,
            app.item_index) == []


class TestPruningDegenerateCases:
    def test_all_pois_in_one_cell_full_scan(self):
        """m == 1: nothing to exclude, forced pruning must fall back."""
        offs = [i * 1e-5 for i in range(12)]  # ~1 m apart, one grid cell
        dataset, index, arrays, prof = _tiny_city(offs, offs)
        ca = next(c for c in arrays.categories.values() if len(c))
        assert ca.n_cells == 1
        scans = _compare(dataset, index, arrays, prof,
                         np.array([[48.85, 2.35]]), GroupQuery.of(rest=2))
        assert scans.pruned_scans == 0 and scans.full_scans > 0
        assert scans.cells_pruned == 0

    def test_pool_covering_category_full_scan(self, app, arrays, profile):
        """target >= n: under a budget the repair phase reads the whole
        candidate pool, so a pool larger than the category leaves
        nothing to exclude and pruning must stand down."""
        scans = _compare(app.dataset, app.item_index, arrays, profile,
                         np.asarray([app.dataset.coordinates().mean(axis=0)]),
                         GroupQuery.of(rest=1, budget=50.0), pool=10_000)
        assert scans.pruned_scans == 0 and scans.full_scans > 0
        assert scans.rows_scored == scans.rows_total

    def test_bound_excluding_nothing_full_scan(self):
        """Two clusters equidistant from the centroid: every cell's
        upper bound reaches the admission bar, so the scan must detect
        zero exclusions and run the full pass."""
        n = 8
        offs = [0.01] * n + [-0.01] * n  # symmetric about the centroid
        dataset, index, arrays, prof = _tiny_city(
            offs, [j * 1e-5 for j in range(n)] * 2)
        ca = next(c for c in arrays.categories.values() if len(c))
        assert ca.n_cells >= 2
        scans = _compare(dataset, index, arrays, prof,
                         np.array([[48.85, 2.35]]), GroupQuery.of(rest=2),
                         gamma=0.0)
        assert scans.pruned_scans == 0 and scans.full_scans > 0
        assert scans.rows_scored == scans.rows_total

    def test_distant_clusters_are_pruned(self):
        """Cluster A at the centroid, cluster B ~11 km away (beyond many
        empty cells): B's cells must be excluded and never scored."""
        n = 8
        offs = [j * 1e-5 for j in range(n)] + [0.1 + j * 1e-5
                                               for j in range(n)]
        dataset, index, arrays, prof = _tiny_city(offs, [0.0] * (2 * n))
        scans = _compare(dataset, index, arrays, prof,
                         np.array([[48.85, 2.35]]), GroupQuery.of(rest=2),
                         gamma=0.0)
        assert scans.pruned_scans > 0 and scans.cells_pruned > 0
        assert scans.rows_scored < scans.rows_total

    def test_budget_keeps_cheap_rows_reachable(self):
        """Under a budget the pruned subset must still carry the
        cost-ordered repair candidates (identity already asserted by
        _compare; this pins the scenario where the cheap rows live in
        the far, otherwise-pruned cluster)."""
        n = 10
        offs = [j * 1e-5 for j in range(n)] + [0.1 + j * 1e-5
                                               for j in range(n)]
        lat_offs = offs
        pois = [make_poi(i, cat="rest", lat=48.85 + dlat, lon=2.35,
                         cost=(0.5 if i >= n else 9.0))  # far rows cheap
                for i, dlat in enumerate(lat_offs)]
        dataset = POIDataset(pois, city="tiny")
        index = ItemVectorIndex.fit(dataset, lda_iterations=5, seed=3)
        arrays = CityArrays.of(dataset, index)
        prof = GroupGenerator(index.schema, seed=5).uniform_group(3).profile()
        scans = _compare(dataset, index, arrays, prof,
                         np.array([[48.85, 2.35]]),
                         GroupQuery.of(rest=2, budget=2.0), gamma=0.0)
        assert scans.pruned_scans + scans.full_scans > 0


class TestCounterPlumbing:
    def test_no_collector_is_a_noop(self, app, arrays, profile):
        # Just exercising the path with no contextvar set.
        assemble_composite_items(
            app.dataset, np.asarray([app.dataset.coordinates().mean(axis=0)]),
            DEFAULT_QUERY, profile, app.item_index, arrays=arrays)

    def test_nested_collectors_do_not_bleed(self, app, arrays, profile):
        cents = np.asarray([app.dataset.coordinates().mean(axis=0)])
        with collect_assembly_counters() as outer:
            with collect_assembly_counters() as inner:
                assemble_composite_items(app.dataset, cents, DEFAULT_QUERY,
                                         profile, app.item_index,
                                         arrays=arrays)
        assert inner.rows_total > 0
        assert outer.rows_total == 0

    def test_builder_build_records_scans(self, app, profile):
        with collect_assembly_counters() as scans:
            app.kfc.build(profile, DEFAULT_QUERY)
        # k centroids x 4 categories x (1 + refine rounds) scans.
        assert scans.full_scans + scans.pruned_scans >= 20
        assert scans.rows_scored > 0
        assert scans.rows_total >= scans.rows_scored

    def test_engine_surfaces_assembly_stats(self, app):
        from repro.service import (BuildRequest, CityRegistry, GroupSpec,
                                   PackageService)
        registry = CityRegistry(seed=7, scale=0.4, lda_iterations=30)
        registry.register(app.dataset, app.item_index, name="paris")
        service = PackageService(registry, cache_capacity=8)
        request = BuildRequest(city="paris",
                               group_spec=GroupSpec(size=3, uniform=True,
                                                    seed=5))
        service.build(request)
        assembly = service.stats()["assembly"]
        assert assembly["rows_scored"] > 0
        assert assembly["rows_total"] >= assembly["rows_scored"]
        assert assembly["full_scans"] + assembly["pruned_scans"] > 0
        series = service.stats()["metrics"]["windows"]["series"]
        assert "assembly.rows_scored" in series
        assert "assembly.cells_pruned" in series
